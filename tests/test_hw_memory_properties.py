"""Property-based tests for the page-frame allocator (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.errors import OutOfMemory
from repro.hw.memory import PhysicalMemory

PAGE = 4096
TOTAL_PAGES = 64


class _Op:
    """One allocator operation: allocate(n pages) or free(index)."""

    def __init__(self, kind, value):
        self.kind = kind
        self.value = value

    def __repr__(self):
        return f"{self.kind}({self.value})"


ops_strategy = st.lists(
    st.one_of(
        st.integers(min_value=1, max_value=16).map(lambda n: _Op("alloc", n)),
        st.integers(min_value=0, max_value=30).map(lambda i: _Op("free", i)),
    ),
    max_size=60,
)


@given(ops_strategy)
@settings(max_examples=200, deadline=None)
def test_allocator_invariants_under_random_workload(ops):
    """No overlap, exact accounting, and full reclamation always hold."""
    mem = PhysicalMemory(TOTAL_PAGES * PAGE, PAGE)
    live = []
    for op in ops:
        if op.kind == "alloc":
            try:
                region = mem.allocate(op.value * PAGE, owner="w")
            except OutOfMemory:
                assert op.value * PAGE > mem.free_bytes
                continue
            live.append(region)
        elif live:
            region = live.pop(op.value % len(live))
            mem.free(region)

        # Invariant 1: live regions never overlap.
        seen = set()
        for region in live:
            for page in region.pages:
                assert page.hpa not in seen, "frame handed out twice"
                seen.add(page.hpa)
        # Invariant 2: accounting matches the live set exactly.
        assert mem.allocated_bytes == sum(r.size_bytes for r in live)
        assert 0 <= mem.free_bytes <= mem.total_bytes
        # Invariant 3: every allocated frame is addressable via page_at.
        for region in live:
            assert mem.page_at(region.pages[0].hpa) is region.pages[0]

    # Full reclamation: freeing everything coalesces back to one extent.
    for region in live:
        mem.free(region)
    assert mem.allocated_bytes == 0
    assert mem.free_extent_count == 1


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=10)
)
@settings(max_examples=100, deadline=None)
def test_batches_partition_the_region(sizes):
    """Batches are disjoint, contiguous, and cover every page exactly once."""
    mem = PhysicalMemory(TOTAL_PAGES * PAGE, PAGE)
    mem.fragment(max_run_bytes=8 * PAGE)
    for npages in sizes:
        if npages * PAGE > mem.free_bytes:
            continue
        region = mem.allocate(npages * PAGE, owner="w")
        assert region.page_count == npages
        flattened = [p for batch in region.batches for p in batch]
        assert flattened == region.pages
        for batch in region.batches:
            for a, b in zip(batch, batch[1:]):
                assert b.hpa == a.hpa + a.size, "batch not contiguous"


@given(
    tags=st.lists(
        st.sampled_from(["tenant-a", "tenant-b", "tenant-c"]),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=50, deadline=None)
def test_recycled_memory_never_loses_dirty_marking(tags):
    """However frames are recycled, unzeroed data stays flagged residual."""
    mem = PhysicalMemory(TOTAL_PAGES * PAGE, PAGE)
    for tag in tags:
        region = mem.allocate(4 * PAGE, owner=tag)
        for i, page in enumerate(region.pages):
            if i % 2 == 0:
                page.write(f"{tag}-secret")
            else:
                page.zero()
        mem.free(region)
    final = mem.allocate(TOTAL_PAGES * PAGE, owner="auditor")
    for page in final.pages:
        if page.is_residual:
            assert page.content_tag is None or "secret" in page.content_tag
        # Zeroed-then-freed frames must never be flagged residual.
        if page.content_tag is None and not page.is_residual:
            assert page.is_zeroed


@given(
    max_run_pages=st.integers(min_value=1, max_value=16),
    sizes=st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=8),
)
@settings(max_examples=100, deadline=None)
def test_fragment_preserves_accounting_and_batch_structure(max_run_pages, sizes):
    """fragment() only reshapes free extents; allocations stay correct."""
    mem = PhysicalMemory(TOTAL_PAGES * PAGE, PAGE)
    free_before = mem.free_bytes
    mem.fragment(max_run_bytes=max_run_pages * PAGE)
    assert mem.free_bytes == free_before
    assert mem.allocated_bytes == 0

    live = []
    for npages in sizes:
        if npages * PAGE > mem.free_bytes:
            continue
        region = mem.allocate(npages * PAGE, owner="w")
        live.append(region)
        # Each retrieval batch fits inside one (fragmented) free extent.
        for start, end in region._batch_spans:
            assert (end - start) <= max_run_pages * PAGE
        # The batch-span index and the run list describe the same pages.
        assert sum(e - s for s, e in region._batch_spans) == region.size_bytes
        assert sum(run.nbytes for run in region.runs) == region.size_bytes
        # page_at_index agrees with the flattened batch order.
        flattened = [p for batch in region.batches for p in batch]
        for i in (0, region.page_count // 2, region.page_count - 1):
            assert region.page_at_index(i) is flattened[i]
    for region in live:
        mem.free(region)
    assert mem.allocated_bytes == 0
    assert mem.free_bytes == free_before


@given(
    tags=st.lists(
        st.sampled_from(["tenant-a", "tenant-b", "tenant-c"]),
        min_size=1,
        max_size=6,
    ),
    max_run_pages=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_recycled_tags_survive_fragmentation(tags, max_run_pages):
    """Per-frame residual tags stay exact through fragment + recycle.

    The run-length representation may merge or split spans arbitrarily,
    but the byte an auditor would read from a recycled frame — and the
    tenant tag naming who wrote it — must match a per-frame oracle.
    """
    mem = PhysicalMemory(TOTAL_PAGES * PAGE, PAGE)
    mem.fragment(max_run_bytes=max_run_pages * PAGE)
    oracle = {}  # hpa -> ("zero", None) | ("residual", tag)
    for tag in tags:
        region = mem.allocate(6 * PAGE, owner=tag)
        for i in range(region.page_count):
            page = region.page_at_index(i)
            if i % 3 == 0:
                page.write(f"{tag}-secret")
                oracle[page.hpa] = ("residual", f"{tag}-secret")
            elif i % 3 == 1:
                page.zero()
                oracle[page.hpa] = ("zero", None)
            else:
                # Untouched allocation: keeps whatever state the frame
                # already had; pristine frames free as owner-tagged dirt.
                oracle.setdefault(page.hpa, ("residual", tag))
        mem.free(region)

    final = mem.allocate(TOTAL_PAGES * PAGE, owner="auditor")
    for i in range(final.page_count):
        page = final.page_at_index(i)
        kind, tag = oracle.get(page.hpa, ("residual", None))
        if kind == "zero":
            assert page.is_zeroed and page.content_tag is None
        else:
            assert page.is_residual
            assert page.content_tag == tag


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=8),
    writes=st.lists(st.integers(min_value=0, max_value=63), max_size=20),
)
@settings(max_examples=100, deadline=None)
def test_runs_stay_sorted_disjoint_and_maximally_coalesced(sizes, writes):
    """Structural invariants of the run-length region representation."""
    mem = PhysicalMemory(TOTAL_PAGES * PAGE, PAGE)
    mem.fragment(max_run_bytes=4 * PAGE)
    live = []
    for npages in sizes:
        if npages * PAGE > mem.free_bytes:
            continue
        live.append(mem.allocate(npages * PAGE, owner="w"))
    if not live:
        return
    for w in writes:
        region = live[w % len(live)]
        index = w % region.page_count
        if w % 2:
            region.page_at_index(index).write(f"data-{w}")
        else:
            region.page_at_index(index).zero()
    for region in live:
        runs = region.runs
        for a, b in zip(runs, runs[1:]):
            assert a.end <= b.hpa, "runs overlap or are unsorted"
        # Splitting never inflates the representation past one run per
        # page (adjacent same-state runs from separate retrieval batches
        # are legal until a mutation merges them).
        assert len(runs) <= region.page_count
        # Views resolve through the run list with stable identity.
        for i in (0, region.page_count - 1):
            page = region.page_at_index(i)
            assert region.page_at_index(i) is page
            assert mem.page_at(page.hpa) is page
