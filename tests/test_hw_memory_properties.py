"""Property-based tests for the page-frame allocator (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.errors import OutOfMemory
from repro.hw.memory import PhysicalMemory

PAGE = 4096
TOTAL_PAGES = 64


class _Op:
    """One allocator operation: allocate(n pages) or free(index)."""

    def __init__(self, kind, value):
        self.kind = kind
        self.value = value

    def __repr__(self):
        return f"{self.kind}({self.value})"


ops_strategy = st.lists(
    st.one_of(
        st.integers(min_value=1, max_value=16).map(lambda n: _Op("alloc", n)),
        st.integers(min_value=0, max_value=30).map(lambda i: _Op("free", i)),
    ),
    max_size=60,
)


@given(ops_strategy)
@settings(max_examples=200, deadline=None)
def test_allocator_invariants_under_random_workload(ops):
    """No overlap, exact accounting, and full reclamation always hold."""
    mem = PhysicalMemory(TOTAL_PAGES * PAGE, PAGE)
    live = []
    for op in ops:
        if op.kind == "alloc":
            try:
                region = mem.allocate(op.value * PAGE, owner="w")
            except OutOfMemory:
                assert op.value * PAGE > mem.free_bytes
                continue
            live.append(region)
        elif live:
            region = live.pop(op.value % len(live))
            mem.free(region)

        # Invariant 1: live regions never overlap.
        seen = set()
        for region in live:
            for page in region.pages:
                assert page.hpa not in seen, "frame handed out twice"
                seen.add(page.hpa)
        # Invariant 2: accounting matches the live set exactly.
        assert mem.allocated_bytes == sum(r.size_bytes for r in live)
        assert 0 <= mem.free_bytes <= mem.total_bytes
        # Invariant 3: every allocated frame is addressable via page_at.
        for region in live:
            assert mem.page_at(region.pages[0].hpa) is region.pages[0]

    # Full reclamation: freeing everything coalesces back to one extent.
    for region in live:
        mem.free(region)
    assert mem.allocated_bytes == 0
    assert mem.free_extent_count == 1


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=10)
)
@settings(max_examples=100, deadline=None)
def test_batches_partition_the_region(sizes):
    """Batches are disjoint, contiguous, and cover every page exactly once."""
    mem = PhysicalMemory(TOTAL_PAGES * PAGE, PAGE)
    mem.fragment(max_run_bytes=8 * PAGE)
    for npages in sizes:
        if npages * PAGE > mem.free_bytes:
            continue
        region = mem.allocate(npages * PAGE, owner="w")
        assert region.page_count == npages
        flattened = [p for batch in region.batches for p in batch]
        assert flattened == region.pages
        for batch in region.batches:
            for a, b in zip(batch, batch[1:]):
                assert b.hpa == a.hpa + a.size, "batch not contiguous"


@given(
    tags=st.lists(
        st.sampled_from(["tenant-a", "tenant-b", "tenant-c"]),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=50, deadline=None)
def test_recycled_memory_never_loses_dirty_marking(tags):
    """However frames are recycled, unzeroed data stays flagged residual."""
    mem = PhysicalMemory(TOTAL_PAGES * PAGE, PAGE)
    for tag in tags:
        region = mem.allocate(4 * PAGE, owner=tag)
        for i, page in enumerate(region.pages):
            if i % 2 == 0:
                page.write(f"{tag}-secret")
            else:
                page.zero()
        mem.free(region)
    final = mem.allocate(TOTAL_PAGES * PAGE, owner="auditor")
    for page in final.pages:
        if page.is_residual:
            assert page.content_tag is None or "secret" in page.content_tag
        # Zeroed-then-freed frames must never be flagged residual.
        if page.content_tag is None and not page.is_residual:
            assert page.is_zeroed
