"""Unit tests for the metrics layer (timeline, stats, reporting)."""

import pytest

from repro.metrics.reporting import format_comparison, format_series, format_table
from repro.metrics.stats import Distribution, cdf_points, mean, percentile
from repro.metrics.timeline import (
    PAPER_STEPS,
    VF_RELATED_STEPS,
    NullTimer,
    StartupRecord,
    StepTimer,
)
from repro.sim import Simulator, Timeout


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
def test_mean_and_empty():
    assert mean([1, 2, 3]) == 2
    with pytest.raises(ValueError):
        mean([])


def test_percentile_matches_numpy_linear():
    values = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6]
    numpy = pytest.importorskip("numpy")
    for q in (0, 10, 50, 90, 99, 100):
        assert percentile(values, q) == pytest.approx(
            float(numpy.percentile(values, q))
        )


def test_percentile_edges():
    assert percentile([5.0], 99) == 5.0
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_cdf_points():
    points = cdf_points([3.0, 1.0, 2.0])
    assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]
    with pytest.raises(ValueError):
        cdf_points([])


def test_distribution_summary_and_reduction():
    base = Distribution([10.0] * 10, label="base")
    fast = Distribution([4.0] * 10, label="fast")
    assert fast.reduction_vs(base) == pytest.approx(0.6)
    assert fast.reduction_vs(base, metric="p99") == pytest.approx(0.6)
    summary = fast.summary()
    assert summary["count"] == 10
    assert summary["p50"] == 4.0
    with pytest.raises(ValueError):
        Distribution([], label="empty")


# ----------------------------------------------------------------------
# timeline
# ----------------------------------------------------------------------
def test_step_timer_brackets_virtual_time():
    sim = Simulator()
    record = StartupRecord("c0")
    timer = StepTimer(sim, record)

    def flow():
        timer.mark_start()
        with timer.step("0-cgroup"):
            yield Timeout(0.5)
        with timer.step("1-dma-ram"):
            yield Timeout(2.0)
        with timer.step("1-dma-ram"):  # second span, same step
            yield Timeout(1.0)
        timer.mark_ready()

    sim.spawn(flow())
    sim.run()
    assert record.startup_time == pytest.approx(3.5)
    assert record.step_time("0-cgroup") == pytest.approx(0.5)
    assert record.step_time("1-dma-ram") == pytest.approx(3.0)
    assert record.step_time("unknown") == 0.0
    assert record.vf_related_time() == pytest.approx(3.0)
    assert record.others_time() == pytest.approx(0.5)


def test_timeline_events_sorted_by_start():
    sim = Simulator()
    record = StartupRecord("c0")
    timer = StepTimer(sim, record)

    def flow():
        timer.mark_start()
        with timer.step("b"):
            yield Timeout(1.0)
        with timer.step("a"):
            yield Timeout(1.0)
        timer.mark_ready()

    sim.spawn(flow())
    sim.run()
    names = [name for name, _s, _e in record.timeline()]
    assert names == ["b", "a"]


def test_open_spans_do_not_count():
    sim = Simulator()
    record = StartupRecord("c0")
    timer = StepTimer(sim, record)

    def async_step():
        with timer.step("5-vf-driver"):
            yield Timeout(100.0)

    def main():
        timer.mark_start()
        yield Timeout(1.0)
        timer.mark_ready()

    sim.spawn(async_step(), daemon=True)
    sim.spawn(main())
    sim.run()
    assert record.step_time("5-vf-driver") == 0.0


def test_incomplete_record_raises():
    record = StartupRecord("c0")
    with pytest.raises(ValueError):
        _ = record.startup_time
    with pytest.raises(ValueError):
        _ = record.task_completion_time


def test_null_timer_is_inert():
    timer = NullTimer()
    with timer.step("anything"):
        pass
    timer.mark_start()
    timer.mark_ready()
    timer.mark_app_done()


def test_step_constants_cover_the_paper_table():
    assert len(PAPER_STEPS) == 6
    assert set(VF_RELATED_STEPS) < set(PAPER_STEPS)
    assert "0-cgroup" not in VF_RELATED_STEPS
    assert "2-virtiofs" not in VF_RELATED_STEPS


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def test_format_table_aligns_and_formats_floats():
    text = format_table(["name", "value"], [("a", 1.23456), ("long-name", 2)],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "1.235" in text
    assert "long-name" in text


def test_format_series_and_comparison():
    text = format_series("s", [1, 2], [10.0, 20.0], "x", "y")
    assert "10.000" in text
    comparison = format_comparison("c", [("m", "1", "2", "")])
    assert "paper" in comparison and "measured" in comparison


def test_steps_outside_paper_set_aggregate_as_others():
    """Any step not in the six-step paper set lands in "others".

    Fig. 11 stacks VF-related vs "others": the others bucket is defined
    as startup time minus the four VF-related steps, so named non-paper
    steps (vm-create, rom-load, guest-boot...) and untracked gaps both
    aggregate there.
    """
    sim = Simulator()
    record = StartupRecord("c0")
    timer = StepTimer(sim, record)

    def flow():
        timer.mark_start()
        with timer.step("vm-create"):      # not a paper step
            yield Timeout(0.25)
        with timer.step("1-dma-ram"):      # VF-related
            yield Timeout(2.0)
        with timer.step("guest-boot"):     # not a paper step
            yield Timeout(0.5)
        yield Timeout(0.125)               # untracked gap
        timer.mark_ready()

    sim.spawn(flow())
    sim.run()
    assert record.startup_time == pytest.approx(2.875)
    assert record.vf_related_time() == pytest.approx(2.0)
    # others = vm-create + guest-boot + the untracked gap
    assert record.others_time() == pytest.approx(0.875)
    for name in ("vm-create", "guest-boot"):
        assert name not in PAPER_STEPS
        assert name in record.step_names()


def test_six_paper_steps_round_trip_through_reporting():
    """All six Fig. 5 steps recorded once each survive the reporting
    split exactly: VF-related = steps 1+3+4+5, others = steps 0+2."""
    sim = Simulator()
    record = StartupRecord("c0")
    timer = StepTimer(sim, record)
    durations = {name: 0.1 * (i + 1) for i, name in enumerate(PAPER_STEPS)}

    def flow():
        timer.mark_start()
        for name in PAPER_STEPS:
            with timer.step(name):
                yield Timeout(durations[name])
        timer.mark_ready()

    sim.spawn(flow())
    sim.run()
    assert record.step_names() == sorted(PAPER_STEPS)
    for name in PAPER_STEPS:
        assert record.step_time(name) == pytest.approx(durations[name])
    vf_expected = sum(durations[name] for name in VF_RELATED_STEPS)
    assert record.vf_related_time() == pytest.approx(vf_expected)
    assert record.others_time() == pytest.approx(
        sum(durations.values()) - vf_expected
    )
    timeline = record.timeline()
    assert [name for name, _, _ in timeline] == list(PAPER_STEPS)
    assert all(end > start for _, start, end in timeline)
