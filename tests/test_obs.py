"""Unit and integration tests for the flight recorder (repro.obs)."""

import json

import pytest

from repro.obs.export import (
    flat_metrics,
    render_span_summary,
    span_summary,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    MetricsRegistry,
    bucket_index,
    bucket_label,
    merge_metrics,
)
from repro.obs.recorder import TraceRecorder, merge_dumps
from repro.sim import Mutex, Simulator, Timeout


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
def test_bucket_index_base2_microseconds():
    assert bucket_index(0.0) == 0
    assert bucket_index(5e-7) == 0          # under a microsecond
    assert bucket_index(1e-6) == 1          # exactly 1 us -> (0.5us, 1us]... bucket 1
    assert bucket_index(3e-6) == 2          # 3 us -> le_4us
    assert bucket_index(1.0) == 20          # 1e6 us = 2^19.93 -> le_2^20us
    assert bucket_label(0) == "le_1us"
    assert bucket_label(2) == "le_4us"
    assert bucket_label(10) == "le_1024us"


def test_registry_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.inc("a")
    registry.inc("a", 4)
    registry.set_gauge("g", 0.5)
    registry.observe("h", 3e-6)
    registry.observe("h", 3e-6)
    registry.observe("h", 1.0)
    snap = registry.snapshot()
    assert snap["counters"] == {"a": 5}
    assert snap["gauges"] == {"g": 0.5}
    assert snap["histograms"]["h"] == {2: 2, 20: 1}


def test_merge_metrics_sums_counters_and_buckets_maxes_gauges():
    a = {"counters": {"c": 2}, "gauges": {"g": 1.0, "only_a": 3},
         "histograms": {"h": {0: 1, 3: 2}}}
    b = {"counters": {"c": 3, "d": 1}, "gauges": {"g": 4.0},
         "histograms": {"h": {3: 5}, "k": {1: 1}}}
    merged = merge_metrics([a, b])
    assert merged["counters"] == {"c": 5, "d": 1}
    assert merged["gauges"] == {"g": 4.0, "only_a": 3}
    assert merged["histograms"] == {"h": {0: 1, 3: 7}, "k": {1: 1}}


def test_ingest_wheel_stats_routes_counts_vs_gauges():
    registry = MetricsRegistry()
    registry.ingest_wheel_stats({
        "engine": "timing-wheel",          # string -> gauge
        "buckets": 256,                    # config -> gauge
        "events_dispatched": 100,          # monotone -> counter
        "spill_peak": 7,                   # peak -> gauge
    })
    snap = registry.snapshot()
    assert snap["counters"] == {"engine/events_dispatched": 100}
    assert snap["gauges"] == {
        "engine/engine": "timing-wheel",
        "engine/buckets": 256,
        "engine/spill_peak": 7,
    }


def test_ingest_lock_stats_prefixes_scope():
    from repro.sim.sync import LockStats

    stats = LockStats()
    stats.record_grant(0.25)
    registry = MetricsRegistry()
    registry.ingest_lock_stats("host0/rtnl", stats)
    counters = registry.snapshot()["counters"]
    assert counters["lock/host0/rtnl/acquisitions"] == 1
    assert counters["lock/host0/rtnl/total_wait"] == pytest.approx(0.25)


# ----------------------------------------------------------------------
# recorder
# ----------------------------------------------------------------------
def _recorder():
    sim = Simulator()
    recorder = TraceRecorder()
    recorder.bind(sim)
    return sim, recorder


def test_recorder_spans_nest_and_feed_histograms():
    sim, recorder = _recorder()

    def flow():
        recorder.begin("t", "outer")
        yield Timeout(1.0)
        recorder.begin("t", "inner")
        yield Timeout(0.5)
        recorder.end("t")
        yield Timeout(0.25)
        recorder.end("t")

    sim.spawn(flow(), name="t")
    sim.run()
    kinds = [event[0] for event in recorder.tracks["t"]
             if event[0] in "BE"]
    assert kinds == ["B", "B", "E", "E"]
    spans = recorder.registry.snapshot()["histograms"]
    assert "span/outer" in spans and "span/inner" in spans


def test_recorder_unmatched_end_is_dropped():
    _, recorder = _recorder()
    recorder.end("nothing-open")
    assert "nothing-open" not in recorder.tracks


def test_counter_events_are_change_detected():
    _, recorder = _recorder()
    recorder.counter("t", "v", 1)
    recorder.counter("t", "v", 1)
    recorder.counter("t", "v", 2)
    values = [event[3] for event in recorder.tracks["t"]]
    assert values == [1, 2]


def test_process_exit_closes_dangling_spans():
    sim, recorder = _recorder()

    def flow():
        recorder.begin("p", "never-ended")
        yield Timeout(1.0)

    sim.spawn(flow(), name="p")
    sim.run()
    events = recorder.tracks["p"]
    # spawn instant, B, synthetic E at exit, exit instant
    assert [event[0] for event in events] == ["I", "B", "E", "I"]
    assert events[-1][2] == "exit"


def test_probes_sample_only_their_owner():
    sim, recorder = _recorder()
    state = {"x": 0}
    recorder.add_probe("hostA", "hostA/m", "x", lambda: state["x"])

    state["x"] = 5
    recorder.sample_probes("hostB")        # someone else's instant
    assert "hostA/m" not in recorder.tracks
    recorder.sample_probes("hostA")
    recorder.sample_probes("hostA")        # unchanged -> no new event
    assert [event[3] for event in recorder.tracks["hostA/m"]] == [5]


def test_merge_dumps_is_disjoint_union_and_rejects_collisions():
    _, a = _recorder()
    _, b = _recorder()
    a.begin("w0", "s")
    a.end("w0")
    b.instant("w1", "spawn")
    merged = merge_dumps([a.dump(), b.dump()])
    assert set(merged["tracks"]) == {"w0", "w1"}

    _, c = _recorder()
    c.instant("w0", "spawn")
    with pytest.raises(RuntimeError):
        merge_dumps([a.dump(), c.dump()])


def test_lock_wait_and_hold_spans():
    sim = Simulator()
    recorder = TraceRecorder()
    recorder.bind(sim)
    mutex = Mutex(sim, name="m")

    def holder():
        yield mutex.acquire()
        yield Timeout(1.0)
        mutex.release()

    def waiter():
        yield mutex.acquire()
        mutex.release()

    sim.spawn(holder(), name="holder")
    sim.spawn(waiter(), name="waiter")
    sim.run()
    waiter_names = [event[2] for event in recorder.tracks["waiter"]
                    if event[0] == "B"]
    assert "wait m" in waiter_names
    assert "hold m" in waiter_names
    holder_names = [event[2] for event in recorder.tracks["holder"]
                    if event[0] == "B"]
    assert "hold m" in holder_names
    # the waiter-depth counter track saw the queue grow past zero
    depth = [event[3] for event in recorder.tracks["lock/m"]
             if event[2] == "waiters"]
    assert max(depth) >= 1


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
def _demo_bundle():
    sim, recorder = _recorder()

    def flow():
        recorder.begin("t", "work")
        yield Timeout(0.001)
        recorder.end("t")
        recorder.instant("t", "done")
        recorder.counter("t", "level", 3)

    sim.spawn(flow(), name="t")
    sim.run()
    recorder.registry.inc("c")
    recorder.registry.observe("h", 2e-6)
    return recorder.dump()


def test_chrome_trace_structure():
    trace = to_chrome_trace(_demo_bundle())
    events = trace["traceEvents"]
    by_phase = {}
    for event in events:
        by_phase.setdefault(event["ph"], []).append(event)
    assert len(by_phase["B"]) == len(by_phase["E"]) == 1
    begin = by_phase["B"][0]
    assert begin["name"] == "work" and begin["ts"] == 0.0
    assert by_phase["E"][0]["ts"] == pytest.approx(1000.0)  # 1 ms -> us
    assert by_phase["C"][0]["name"] == "t:level"
    assert by_phase["C"][0]["args"]["value"] == 3
    # thread-name metadata names the track
    names = [event["args"]["name"] for event in by_phase["M"]]
    assert "t" in names


def test_chrome_trace_file_is_deterministic(tmp_path):
    bundle = _demo_bundle()
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    write_chrome_trace(bundle, first)
    write_chrome_trace(bundle, second)
    assert first.read_bytes() == second.read_bytes()
    assert json.loads(first.read_text())["traceEvents"]


def test_flat_metrics_labels_buckets():
    metrics = flat_metrics(_demo_bundle())
    assert metrics["counters"]["c"] == 1
    assert metrics["histograms"]["h"] == {"le_4us": 1}


def test_span_summary_replays_tracks():
    summary = span_summary(_demo_bundle())
    count, total, peak = summary["work"]
    assert count == 1
    assert total == pytest.approx(0.001)
    assert peak == pytest.approx(0.001)
    text = render_span_summary(_demo_bundle())
    assert "work" in text and "count" in text


# ----------------------------------------------------------------------
# integration: traced experiment cells
# ----------------------------------------------------------------------
def test_traced_launch_cell_records_the_paper_pipeline():
    import dataclasses

    from repro.experiments import parallel
    from repro.experiments.parallel import Cell, run_cell
    from repro.metrics.timeline import PAPER_STEPS

    base = Cell("vanilla", 8, None, 0)
    plain = run_cell(base)
    assert parallel.LAST_TRACE is None
    traced = run_cell(dataclasses.replace(base, trace=True))
    bundle = parallel.LAST_TRACE
    assert bundle is not None
    # tracing never changes the summary
    assert traced == plain

    summary = span_summary(bundle)
    for step in PAPER_STEPS:
        # at least one span per container (2-virtiofs brackets two
        # phases, so steps may record more than one span each)
        assert summary[step][0] >= 8, f"step {step} missing containers"
    # nested kernel-level spans under the steps
    assert summary["vfio-open"][0] == 8
    assert summary["dma-zero"][0] >= 8      # vanilla zeroes eagerly
    assert any(name.startswith("wait ") for name in summary)
    assert any(name.startswith("hold ") for name in summary)
    # the bytes-zeroed counter track advanced
    zeroed = [event[3] for event in bundle["tracks"]["host/vfio"]
              if event[0] == "C" and event[2] == "bytes_zeroed"]
    assert zeroed and zeroed[-1] > 0
    assert bundle["metrics"]["counters"][
        "host/vfio/bytes_zeroed_total"] == zeroed[-1]


def test_traced_fastiov_cell_records_decoupled_zeroing():
    import dataclasses

    from repro.experiments import parallel
    from repro.experiments.parallel import Cell, run_cell

    run_cell(dataclasses.replace(Cell("fastiov", 8, None, 0), trace=True))
    bundle = parallel.LAST_TRACE
    summary = span_summary(bundle)
    assert summary["dma-register-lazy"][0] >= 8
    assert "dma-zero" not in summary        # no eager bulk zeroing
    # fastiovd's scanner/fault path zeroed pages in the background
    counters = bundle["metrics"]["counters"]
    assert counters["host/vfio/bytes_zeroed_total"] == 0
    fast_tracks = [name for name in bundle["tracks"]
                   if "fastiovd" in name]
    assert fast_tracks, "no fastiovd trace tracks"


def test_sharded_trace_is_byte_identical_in_process():
    """The in-process version of the CI trace gate: a burst cluster
    cell's exported trace must not depend on the shard split."""
    from repro.cluster.churn import run_cluster_cell

    def dump(shards):
        trace = {}
        summary = run_cluster_cell(
            "fastiov", 24, hosts=4, seed=3, shards=shards,
            workers=0 if shards > 1 else None, trace=trace,
        )
        rendered = json.dumps(to_chrome_trace(trace), sort_keys=True,
                              separators=(",", ":"))
        return summary, rendered

    summary_1, trace_1 = dump(1)
    summary_4, trace_4 = dump(4)
    assert summary_1 == summary_4
    assert trace_1 == trace_4


def test_ingest_sync_stats_routes_counters_mode_and_wait():
    registry = MetricsRegistry()
    registry.ingest_sync_stats({
        "mode": "optimistic",              # string -> gauge
        "epochs": 12,                      # monotone -> counter
        "rollbacks": 3,
        "speculated_events": 4000,
        "replayed_events": 900,
        "speculation_commits": 9,
        "throttled_shards": 1,
        "barrier_wait_s": 0.125,           # wall-clock -> gauge
    })
    snap = registry.snapshot()
    assert snap["counters"] == {
        "sync/epochs": 12,
        "sync/rollbacks": 3,
        "sync/speculated_events": 4000,
        "sync/replayed_events": 900,
        "sync/speculation_commits": 9,
        "sync/throttled_shards": 1,
    }
    assert snap["gauges"]["sync/mode"] == "optimistic"
    assert snap["gauges"]["sync/barrier_wait_s"] == pytest.approx(0.125)


def test_sharded_trace_carries_sync_counters_outside_the_timeline():
    """Optimistic protocol counters ride the trace bundle's metrics
    (diagnostics), never its tracks — the exported timeline must stay
    byte-identical to the conservative run's."""
    from repro.cluster import cluster_arrivals
    from repro.cluster.sharded import run_sharded_cluster

    def dump(sync):
        trace = {}
        run_sharded_cluster(
            "fastiov", 24, hosts=4, seed=3, shards=2, workers=0,
            arrivals=cluster_arrivals(3, 12.0), sync=sync, trace=trace,
        )
        rendered = json.dumps(to_chrome_trace(trace), sort_keys=True,
                              separators=(",", ":"))
        return trace, rendered

    conservative, trace_cons = dump("conservative")
    optimistic, trace_opt = dump("optimistic")
    assert trace_opt == trace_cons
    counters = optimistic["metrics"]["counters"]
    assert counters["sync/epochs"] > 0
    assert "sync/rollbacks" in counters
    assert optimistic["metrics"]["gauges"]["sync/mode"] == "optimistic"
