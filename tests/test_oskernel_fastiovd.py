"""Tests for the fastiovd module: lazy zeroing machinery and safety.

Includes the failure-injection scenarios of §4.3.2: what goes wrong
without the instant-zeroing list and without proactive EPT faults.
"""

import pytest

from repro.hw.memory import MIB
from repro.oskernel.kvm import PinnedBacking
from repro.oskernel.vfio import DECOUPLED_ZEROING
from repro.sim.core import Timeout
from tests.conftest import KernelRig


def make_rig(scanner=True):
    r = KernelRig(lock_policy="hierarchical", with_fastiovd=True, scanner=scanner)
    r.bind_all_vfs_to_vfio()
    return r


def build_lazy_vm(r, name="vm0", ram=16 * MIB):
    state = {}

    def flow():
        vm = r.kvm.create_vm(name, r.memory.page_size)
        domain = r.vfio.create_domain(name)
        region = yield from r.vfio.dma_map(
            domain, owner=name, label="ram", nbytes=ram, gpa_base=0,
            policy=DECOUPLED_ZEROING,
        )
        yield from r.kvm.register_slot(vm, 0, PinnedBacking(region), "ram")
        state.update(vm=vm, region=region)

    r.sim.spawn(flow())
    r.run()
    return state


# ----------------------------------------------------------------------
# lazy zeroing on the EPT-fault path
# ----------------------------------------------------------------------
def test_fault_zeroes_pending_page_before_guest_sees_it():
    r = make_rig(scanner=False)
    state = build_lazy_vm(r)
    vm = state["vm"]

    def flow():
        yield from r.kvm.guest_access(vm, 0)  # read: must be zeroed first

    r.sim.spawn(flow())
    r.run()  # no ResidualDataLeak
    assert r.fastiovd.stats.fault_zeroed_pages == 1
    assert r.fastiovd.pending_pages(vm.pid) == state["region"].page_count - 1


def test_fault_zeroing_charges_cpu_time():
    r = make_rig(scanner=False)
    state = build_lazy_vm(r)
    vm = state["vm"]
    t0 = r.sim.now
    elapsed = {}

    def flow():
        yield from r.kvm.guest_access(vm, 0)
        elapsed["dt"] = r.sim.now - t0

    r.sim.spawn(flow())
    r.run()
    zero_cost = r.spec.fault_zeroing_cpu_seconds(r.memory.page_size)
    assert elapsed["dt"] >= zero_cost


def test_faults_on_unmanaged_pages_are_cheap_noops():
    r = make_rig(scanner=False)
    state = build_lazy_vm(r)
    vm = state["vm"]

    def flow():
        yield from r.kvm.guest_access(vm, 0)
        before = r.fastiovd.stats.fault_zeroed_pages
        yield from r.kvm.guest_access(vm, 100)  # same page, no fault at all
        assert r.fastiovd.stats.fault_zeroed_pages == before

    r.sim.spawn(flow())
    r.run()


# ----------------------------------------------------------------------
# background scanner
# ----------------------------------------------------------------------
def test_background_scanner_drains_the_table():
    r = make_rig(scanner=True)
    state = build_lazy_vm(r, ram=8 * MIB)
    assert r.fastiovd.pending_pages() == 8

    def waiter():
        yield Timeout(5.0)

    r.sim.spawn(waiter())
    r.run()
    assert r.fastiovd.pending_pages() == 0
    assert r.fastiovd.stats.background_zeroed_pages == 8
    assert all(page.is_zeroed for page in state["region"].pages)


def test_scanner_and_fault_never_double_zero_or_race():
    """A fault racing the scanner waits for the in-flight zeroing."""
    r = make_rig(scanner=True)
    state = build_lazy_vm(r, ram=32 * MIB)
    vm = state["vm"]

    def toucher():
        # Start touching right as the scanner begins claiming pages.
        yield Timeout(r.spec.fastiovd_scan_interval_s)
        for gpa in range(0, 32 * MIB, r.memory.page_size):
            yield from r.kvm.guest_access(vm, gpa)

    r.sim.spawn(toucher())
    r.run()
    stats = r.fastiovd.stats
    assert stats.fault_zeroed_pages + stats.background_zeroed_pages == 32
    assert all(page.is_zeroed for page in state["region"].pages)


def test_scanner_respects_chunk_budget():
    spec_small_chunk = KernelRig().spec.derive(
        fastiovd_scan_chunk_bytes=2 * MIB, fastiovd_scan_interval_s=0.1
    )
    r = KernelRig(spec=spec_small_chunk, lock_policy="hierarchical",
                  with_fastiovd=True)
    r.bind_all_vfs_to_vfio()
    build_lazy_vm(r, ram=8 * MIB)

    def waiter():
        yield Timeout(0.25)  # two scan wakeups at most

    r.sim.spawn(waiter())
    r.run(until=0.25)
    assert r.fastiovd.stats.background_zeroed_pages <= 4


# ----------------------------------------------------------------------
# instant-zeroing list
# ----------------------------------------------------------------------
def test_instant_zeroing_protects_hypervisor_written_pages():
    r = make_rig(scanner=False)
    state = build_lazy_vm(r)
    vm = state["vm"]
    rom_pages = state["region"].pages[:2]

    def flow():
        # Hypervisor path: instant-zero, then write kernel code.
        yield from r.fastiovd.register_instant(vm.pid, rom_pages)
        for page in rom_pages:
            page.write("hypervisor:kernel")
        # Guest boots and executes the kernel pages.
        yield from r.kvm.guest_touch_range(
            vm, 0, 2 * r.memory.page_size, expect="hypervisor:kernel", verify=True
        )

    r.sim.spawn(flow())
    r.run()  # no GuestCrash
    assert r.fastiovd.stats.instant_pages == 2


def test_missing_instant_list_entry_crashes_guest():
    """Failure injection: hypervisor writes a page that was (wrongly)
    left in the lazy table; the guest's first access zeroes the kernel
    code out from under it -> crash (§4.3.2 scenario 1)."""
    from repro.oskernel.errors import GuestCrash
    from repro.sim.errors import ProcessFailed

    r = make_rig(scanner=False)
    state = build_lazy_vm(r)
    vm = state["vm"]
    rom_page = state["region"].pages[0]

    def flow():
        rom_page.write("hypervisor:kernel")  # no instant-zeroing entry!
        yield from r.kvm.guest_access(vm, 0, expect="hypervisor:kernel")

    r.sim.spawn(flow())
    with pytest.raises(ProcessFailed) as excinfo:
        r.run()
    assert isinstance(excinfo.value.cause, GuestCrash)
    assert rom_page.is_zeroed  # the data really was clobbered


# ----------------------------------------------------------------------
# bookkeeping
# ----------------------------------------------------------------------
def test_forget_pages_and_drop_pid():
    r = make_rig(scanner=False)
    state = build_lazy_vm(r)
    region = state["region"]
    r.fastiovd.forget_pages("vm0", region.pages[:4])
    assert r.fastiovd.pending_pages("vm0") == region.page_count - 4
    r.fastiovd.drop_pid("vm0")
    assert r.fastiovd.pending_pages() == 0


def test_pending_bytes_accounting():
    r = make_rig(scanner=False)
    build_lazy_vm(r, ram=8 * MIB)
    assert r.fastiovd.pending_bytes() == 8 * MIB
