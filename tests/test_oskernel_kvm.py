"""Tests for KVM memory slots, EPT-fault servicing, and guest access."""

import pytest

from repro.hw.errors import ResidualDataLeak
from repro.hw.memory import MIB
from repro.oskernel.errors import GuestCrash, KernelError
from repro.oskernel.kvm import AnonBacking, PinnedBacking
from repro.oskernel.vfio import DECOUPLED_ZEROING, EAGER_ZEROING
from repro.sim.errors import ProcessFailed
from tests.conftest import KernelRig


def build_vm(r, name="vm0", ram=16 * MIB, policy=EAGER_ZEROING):
    """Map RAM via VFIO and register it as a KVM slot."""
    state = {}

    def flow():
        vm = r.kvm.create_vm(name, r.memory.page_size)
        domain = r.vfio.create_domain(name)
        region = yield from r.vfio.dma_map(
            domain, owner=name, label="ram", nbytes=ram, gpa_base=0,
            policy=policy,
        )
        slot = yield from r.kvm.register_slot(vm, 0, PinnedBacking(region), "ram")
        state.update(vm=vm, region=region, slot=slot)

    r.sim.spawn(flow())
    r.run()
    return state


def test_slot_registration_and_lookup(rig):
    state = build_vm(rig)
    vm = state["vm"]
    slot, offset = vm.find_slot(5 * MIB)
    assert slot is state["slot"]
    assert offset == 5 * MIB
    with pytest.raises(KernelError):
        vm.find_slot(100 * MIB)


def test_overlapping_slots_rejected(rig):
    state = build_vm(rig)
    vm = state["vm"]

    def flow():
        yield from rig.kvm.register_slot(
            vm, 8 * MIB, PinnedBacking(state["region"]), "overlap"
        )

    rig.sim.spawn(flow())
    with pytest.raises(ProcessFailed):
        rig.run()


def test_duplicate_vm_name_rejected(rig):
    rig.kvm.create_vm("vm0", rig.memory.page_size)
    with pytest.raises(KernelError):
        rig.kvm.create_vm("vm0", rig.memory.page_size)


def test_ept_fault_installs_entry_once(rig):
    state = build_vm(rig)
    vm = state["vm"]

    def flow():
        yield from rig.kvm.guest_access(vm, MIB + 5)
        yield from rig.kvm.guest_access(vm, MIB + 7)  # same page: no fault

    rig.sim.spawn(flow())
    rig.run()
    assert vm.ept.fault_count == 1
    assert rig.kvm.ept_faults_serviced == 1
    assert vm.ept.has_entry(MIB)


def test_guest_touch_range_faults_each_page_once(rig):
    state = build_vm(rig)
    vm = state["vm"]

    def flow():
        yield from rig.kvm.guest_touch_range(vm, 0, 8 * MIB)
        yield from rig.kvm.guest_touch_range(vm, 0, 8 * MIB)

    rig.sim.spawn(flow())
    rig.run()
    assert vm.ept.fault_count == 8


def test_guest_read_of_eagerly_zeroed_ram_is_clean(rig):
    state = build_vm(rig)
    vm = state["vm"]

    def flow():
        yield from rig.kvm.guest_touch_range(vm, 0, 16 * MIB)

    rig.sim.spawn(flow())
    rig.run()  # would raise ResidualDataLeak if any page were dirty


def test_guest_read_without_zeroing_leaks(rig):
    """No zeroing at all (not even lazy): the leak check fires.

    This is the negative control proving the security invariant is
    actually enforced by the model.
    """
    state = {}

    def flow():
        vm = rig.kvm.create_vm("vm0", rig.memory.page_size)
        domain = rig.vfio.create_domain("vm0")
        # Simulate a (buggy) mapping that skips zeroing entirely by
        # allocating and pinning by hand.
        allocation = rig.memory.allocate(4 * MIB, owner="vm0", label="ram")
        for page in allocation.pages:
            page.pin()
        for index, page in enumerate(allocation.pages):
            domain.map_page(index * page.size, page)

        class RawBacking:
            size_bytes = allocation.size_bytes

            def page_at_offset(self, offset):
                return allocation.pages[offset // rig.memory.page_size]
                yield

        yield from rig.kvm.register_slot(vm, 0, RawBacking(), "ram")
        yield from rig.kvm.guest_access(vm, 0)

    rig.sim.spawn(flow())
    with pytest.raises(ProcessFailed) as excinfo:
        rig.run()
    assert isinstance(excinfo.value.cause, ResidualDataLeak)


def test_guest_write_then_read_roundtrip(rig):
    state = build_vm(rig)
    vm = state["vm"]
    seen = {}

    def flow():
        yield from rig.kvm.guest_access(vm, 2 * MIB, write=True, tag="guest-data")
        page = yield from rig.kvm.guest_access(vm, 2 * MIB, expect="guest-data")
        seen["tag"] = page.content_tag

    rig.sim.spawn(flow())
    rig.run()
    assert seen["tag"] == "guest-data"


def test_guest_expectation_mismatch_is_a_crash(rig):
    state = build_vm(rig)
    vm = state["vm"]

    def flow():
        yield from rig.kvm.guest_access(vm, 0, expect="kernel-code")

    rig.sim.spawn(flow())
    with pytest.raises(ProcessFailed) as excinfo:
        rig.run()
    assert isinstance(excinfo.value.cause, GuestCrash)


def test_anon_backing_demand_faults_and_zeroes():
    """The No-Net memory path: alloc+zero on first touch only."""
    r = KernelRig()
    r.bind_all_vfs_to_vfio()
    state = {}

    def flow():
        vm = r.kvm.create_vm("vm0", r.memory.page_size)
        mapping = r.mmu.create_mapping("vm0", "ram", 16 * MIB)
        yield from r.kvm.register_slot(vm, 0, AnonBacking(mapping), "ram")
        state["before"] = r.memory.allocated_bytes
        yield from r.kvm.guest_touch_range(vm, 0, 4 * MIB)
        state["after"] = r.memory.allocated_bytes
        state["mapping"] = mapping

    r.sim.spawn(flow())
    r.run()
    assert state["before"] == 0
    assert state["after"] == 4 * MIB  # only what was touched
    assert state["mapping"].resident_pages == 4


def test_destroy_vm_drops_fastiovd_table(rig_fastiovd):
    r = rig_fastiovd
    state = build_vm(r, policy=DECOUPLED_ZEROING)
    assert r.fastiovd.pending_pages("vm0") > 0
    r.kvm.destroy_vm(state["vm"])
    assert r.fastiovd.pending_pages("vm0") == 0


def test_touch_range_rejects_nonpositive(rig):
    state = build_vm(rig)
    with pytest.raises(ValueError):
        list(rig.kvm.guest_touch_range(state["vm"], 0, 0))
