"""Tests for the devset lock policies (§4.2.1, Fig. 8).

Verifies the four operation-relation requirements for both the coarse
(vanilla) and hierarchical (FastIOV) policies, plus the key behavioural
difference: inter-child parallelism.
"""

import pytest

from repro.oskernel.locks import CoarseLockPolicy, HierarchicalLockPolicy
from repro.sim.core import Simulator, Timeout

HOLD = 1.0


def run_ops(policy_factory, ops, children=("a", "b")):
    """Run (kind, child, start) ops; return {op_index: (start, end)}."""
    sim = Simulator()
    policy = policy_factory(sim, "devset")
    for child in children:
        policy.register_child(child)
    spans = {}

    def child_op(i, child, delay):
        yield Timeout(delay)
        yield from policy.acquire_child(child)
        start = sim.now
        yield Timeout(HOLD)
        policy.release_child(child)
        spans[i] = (start, sim.now)

    def parent_op(i, delay):
        yield Timeout(delay)
        yield from policy.acquire_parent()
        start = sim.now
        yield Timeout(HOLD)
        policy.release_parent()
        spans[i] = (start, sim.now)

    for i, (kind, child, delay) in enumerate(ops):
        if kind == "child":
            sim.spawn(child_op(i, child, delay))
        else:
            sim.spawn(parent_op(i, delay))
    sim.run()
    return spans


def overlaps(span_a, span_b):
    return span_a[0] < span_b[1] and span_b[0] < span_a[1]


POLICIES = [CoarseLockPolicy, HierarchicalLockPolicy]


# ----------------------------------------------------------------------
# Requirements shared by both policies (mutual exclusion cases)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("factory", POLICIES)
def test_intra_child_operations_serialize(factory):
    spans = run_ops(factory, [("child", "a", 0.0), ("child", "a", 0.0)])
    assert not overlaps(spans[0], spans[1])


@pytest.mark.parametrize("factory", POLICIES)
def test_intra_parent_operations_serialize(factory):
    spans = run_ops(factory, [("parent", None, 0.0), ("parent", None, 0.0)])
    assert not overlaps(spans[0], spans[1])


@pytest.mark.parametrize("factory", POLICIES)
def test_parent_child_operations_serialize(factory):
    spans = run_ops(factory, [("parent", None, 0.0), ("child", "a", 0.1)])
    assert not overlaps(spans[0], spans[1])


@pytest.mark.parametrize("factory", POLICIES)
def test_child_blocks_parent(factory):
    spans = run_ops(factory, [("child", "a", 0.0), ("parent", None, 0.1)])
    assert not overlaps(spans[0], spans[1])
    assert spans[1][0] >= spans[0][1]


# ----------------------------------------------------------------------
# The behavioural difference: inter-child operations
# ----------------------------------------------------------------------
def test_coarse_policy_serializes_inter_child_ops():
    spans = run_ops(CoarseLockPolicy, [("child", "a", 0.0), ("child", "b", 0.0)])
    assert not overlaps(spans[0], spans[1])


def test_hierarchical_policy_parallelizes_inter_child_ops():
    spans = run_ops(
        HierarchicalLockPolicy, [("child", "a", 0.0), ("child", "b", 0.0)]
    )
    assert overlaps(spans[0], spans[1])
    assert spans[0] == spans[1] == (0.0, HOLD)


def test_hierarchical_scales_to_many_children():
    n = 50
    children = [f"c{i}" for i in range(n)]
    ops = [("child", c, 0.0) for c in children]
    spans = run_ops(HierarchicalLockPolicy, ops, children=children)
    assert all(span == (0.0, HOLD) for span in spans.values())


def test_coarse_cost_grows_linearly_with_children():
    n = 10
    children = [f"c{i}" for i in range(n)]
    ops = [("child", c, 0.0) for c in children]
    spans = run_ops(CoarseLockPolicy, ops, children=children)
    assert max(end for _s, end in spans.values()) == pytest.approx(n * HOLD)


def test_hierarchical_parent_excludes_all_children():
    # Parent op arrives while two children hold; a third child arrives
    # after the parent. FIFO: children(0,1) -> parent -> child(2).
    spans = run_ops(
        HierarchicalLockPolicy,
        [
            ("child", "a", 0.0),
            ("child", "b", 0.0),
            ("parent", None, 0.2),
            ("child", "a", 0.4),
        ],
    )
    assert spans[0] == spans[1] == (0.0, HOLD)
    assert spans[2][0] >= HOLD  # waited for both children
    assert spans[3][0] >= spans[2][1]  # queued behind the writer


def test_hierarchical_unregistered_child_fails():
    sim = Simulator()
    policy = HierarchicalLockPolicy(sim, "devset")

    def op():
        yield from policy.acquire_child("ghost")

    sim.spawn(op())
    from repro.sim.errors import ProcessFailed

    with pytest.raises(ProcessFailed):
        sim.run()


@pytest.mark.parametrize("factory", POLICIES)
def test_contention_stats_exposed(factory):
    sim = Simulator()
    policy = factory(sim, "devset")
    policy.register_child("a")

    def op():
        yield from policy.acquire_child("a")
        yield Timeout(0.5)
        policy.release_child("a")

    sim.spawn(op())
    sim.spawn(op())
    sim.run()
    stats = policy.contention_stats
    assert stats
    total_acquisitions = sum(s.acquisitions for s in stats.values())
    assert total_acquisitions >= 2
