"""Tests for cgroups, driver binding, host network stack, and MMU."""

import pytest

from repro.hw.memory import MIB
from repro.oskernel.binding import HOST_NETDEV_DRIVER
from repro.oskernel.errors import KernelError
from repro.oskernel.vfio import VFIO_DRIVER_NAME
from repro.sim.core import Timeout
from repro.sim.errors import ProcessFailed
from tests.conftest import KernelRig


# ----------------------------------------------------------------------
# cgroups
# ----------------------------------------------------------------------
def test_cgroup_creations_serialize_on_global_lock():
    r = KernelRig()
    n = 10
    done = {}

    def create(i):
        yield from r.cgroups.create(f"c{i}")
        done[i] = r.sim.now

    for i in range(n):
        r.sim.spawn(create(i))
    r.run()
    # Last creation waited behind n-1 lock holds.
    expected_last = r.spec.cgroup_base_s + n * r.spec.cgroup_lock_hold_s
    assert max(done.values()) == pytest.approx(expected_last, rel=0.05)
    assert r.cgroups.created == n
    assert r.cgroups.lock_stats.contended == n - 1


def test_softcni_cgroup_costs_more():
    fast = KernelRig()
    soft = KernelRig()

    def create(r, softcni):
        yield from r.cgroups.create("c0", softcni=softcni)

    fast.sim.spawn(create(fast, False))
    soft.sim.spawn(create(soft, True))
    t_fast = fast.run()
    t_soft = soft.run()
    assert t_soft > t_fast


def test_duplicate_cgroup_rejected():
    r = KernelRig()

    def flow():
        yield from r.cgroups.create("c0")
        yield from r.cgroups.create("c0")

    r.sim.spawn(flow())
    with pytest.raises(ProcessFailed):
        r.run()


def test_cgroup_destroy():
    r = KernelRig()

    def flow():
        yield from r.cgroups.create("c0")
        yield from r.cgroups.destroy("c0")
        yield from r.cgroups.create("c0")  # name reusable after destroy

    r.sim.spawn(flow())
    r.run()


# ----------------------------------------------------------------------
# driver binding
# ----------------------------------------------------------------------
def test_bind_unbind_cycle_vanilla_flaw():
    """The §5 rebinding dance: host driver bind is the expensive part
    and serializes on the PF mailbox."""
    r = KernelRig(vf_count=4)
    times = {}

    def rebind(i):
        vf = r.vfs[i]
        yield from r.binding.bind(vf, HOST_NETDEV_DRIVER)
        assert vf.netdev_name is not None
        yield from r.binding.unbind(vf)
        yield from r.binding.bind(vf, VFIO_DRIVER_NAME)
        times[i] = r.sim.now

    for i in range(4):
        r.sim.spawn(rebind(i))
    r.run()
    # Host-driver probes serialized: last >= 4 probes back to back.
    assert max(times.values()) >= 4 * r.spec.host_netdev_probe_s * 0.8
    assert all(vf.driver == VFIO_DRIVER_NAME for vf in r.vfs)
    assert r.binding.mailbox_stats.contended == 3


def test_vfio_binds_run_in_parallel():
    r = KernelRig(vf_count=8)
    times = {}

    def bind(i):
        yield from r.binding.bind(r.vfs[i], VFIO_DRIVER_NAME)
        times[i] = r.sim.now

    for i in range(8):
        r.sim.spawn(bind(i))
    r.run()
    assert max(times.values()) < 2 * r.spec.vfio_probe_s


def test_double_bind_and_unbound_unbind_raise():
    r = KernelRig(vf_count=1)

    def flow():
        yield from r.binding.bind(r.vfs[0], VFIO_DRIVER_NAME)
        try:
            yield from r.binding.bind(r.vfs[0], HOST_NETDEV_DRIVER)
        except KernelError:
            pass
        else:
            raise AssertionError("double bind accepted")

    r.sim.spawn(flow())
    r.run()

    r2 = KernelRig(vf_count=1)

    def flow2():
        yield from r2.binding.unbind(r2.vfs[0])

    r2.sim.spawn(flow2())
    with pytest.raises(ProcessFailed):
        r2.run()


def test_unknown_driver_rejected():
    r = KernelRig(vf_count=1)

    def flow():
        yield from r.binding.bind(r.vfs[0], "nouveau")

    r.sim.spawn(flow())
    with pytest.raises(ProcessFailed):
        r.run()


def test_vfio_unbind_unregisters_from_devset():
    r = KernelRig(vf_count=2)

    def flow():
        yield from r.binding.bind(r.vfs[0], VFIO_DRIVER_NAME)
        devset = r.vfio.devset_of(r.vfs[0])
        assert r.vfs[0] in devset.devices
        yield from r.binding.unbind(r.vfs[0])
        assert r.vfs[0] not in devset.devices

    r.sim.spawn(flow())
    r.run()


# ----------------------------------------------------------------------
# host network stack
# ----------------------------------------------------------------------
def test_netdev_create_configure_move():
    r = KernelRig()
    state = {}

    def flow():
        dev = yield from r.hostnet.create_device("dummy0", "dummy")
        yield from r.hostnet.configure(dev, ip_address="10.0.0.5/24",
                                       mac="02:00:00:00:00:05", up=True)
        yield from r.hostnet.move_to_nns(dev, "nns-c0")
        state["dev"] = dev

    r.sim.spawn(flow())
    r.run()
    dev = state["dev"]
    assert dev.ip_address == "10.0.0.5/24"
    assert dev.up
    assert dev.nns == "nns-c0"


def test_rtnl_serializes_and_ipvtap_is_heavier():
    r = KernelRig()
    times = {}

    def create(i, kind):
        yield from r.hostnet.create_device(f"{kind}{i}", kind)
        times[(kind, i)] = r.sim.now

    for i in range(5):
        r.sim.spawn(create(i, "ipvtap"))
    r.run()
    assert max(times.values()) == pytest.approx(
        5 * r.spec.rtnl_ipvtap_create_s, rel=0.05
    )
    assert r.hostnet.rtnl_stats.contended == 4
    # Dummies are much cheaper per the FastIOV CNI design.
    assert r.spec.rtnl_dummy_create_s < r.spec.rtnl_ipvtap_create_s / 10


def test_duplicate_and_unknown_netdev_errors():
    r = KernelRig()

    def flow():
        yield from r.hostnet.create_device("d0", "dummy")
        try:
            yield from r.hostnet.create_device("d0", "dummy")
        except KernelError:
            pass
        else:
            raise AssertionError("duplicate accepted")
        try:
            yield from r.hostnet.create_device("x0", "veth")
        except KernelError:
            pass
        else:
            raise AssertionError("unknown kind accepted")

    r.sim.spawn(flow())
    r.run()
    with pytest.raises(KernelError):
        r.hostnet.device("missing")


def test_netdev_delete():
    r = KernelRig()

    def flow():
        yield from r.hostnet.create_device("d0", "dummy")
        yield from r.hostnet.delete_device("d0")

    r.sim.spawn(flow())
    r.run()
    with pytest.raises(KernelError):
        r.hostnet.device("d0")


# ----------------------------------------------------------------------
# host MMU demand paging
# ----------------------------------------------------------------------
def test_anon_mapping_demand_faults_and_frees():
    r = KernelRig()
    state = {}

    def flow():
        mapping = r.mmu.create_mapping("vm0", "ram", 8 * MIB)
        page = yield from mapping.page_at_offset(3 * MIB)
        state["page"] = page
        again = yield from mapping.page_at_offset(3 * MIB + 100)
        state["again"] = again
        state["mapping"] = mapping

    r.sim.spawn(flow())
    r.run()
    assert state["page"] is state["again"]
    assert state["page"].is_zeroed
    assert r.mmu.fault_count == 1
    state["mapping"].free_all()
    assert r.memory.allocated_bytes == 0


def test_anon_mapping_bounds_checked():
    r = KernelRig()
    mapping = r.mmu.create_mapping("vm0", "ram", 4 * MIB)

    def flow():
        yield from mapping.page_at_offset(4 * MIB)

    r.sim.spawn(flow())
    with pytest.raises(ProcessFailed):
        r.run()
    with pytest.raises(ValueError):
        r.mmu.create_mapping("vm0", "bad", 0)


def test_concurrent_faults_on_same_page_collapse():
    r = KernelRig()
    pages = []
    mapping = r.mmu.create_mapping("vm0", "ram", 4 * MIB)

    def toucher():
        page = yield from mapping.page_at_offset(0)
        pages.append(page)

    r.sim.spawn(toucher())
    r.sim.spawn(toucher())
    r.run()
    assert len(pages) == 2
    assert pages[0] is pages[1]
    assert r.mmu.fault_count == 1
