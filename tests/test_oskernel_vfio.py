"""Tests for VFIO devset management and the DMA mapping pipeline."""

import pytest

from repro.hw.memory import MIB
from repro.hw.pci import PciDevice, ResetScope
from repro.oskernel.errors import VfioError
from repro.oskernel.vfio import (
    DECOUPLED_ZEROING,
    EAGER_ZEROING,
    VFIO_DRIVER_NAME,
    ZeroingMode,
    ZeroingPolicy,
)
from tests.conftest import KernelRig


# ----------------------------------------------------------------------
# devset formation
# ----------------------------------------------------------------------
def test_bus_reset_vfs_share_one_devset(rig):
    devsets = {rig.vfio.devset_of(vf).name for vf in rig.vfs}
    assert len(devsets) == 1


def test_slot_reset_device_forms_singleton_devset(rig):
    dev = PciDevice("3b:1f.0", "slot-capable", ResetScope.SLOT)
    rig.topology.attach(0x3B, dev)
    dev.driver = VFIO_DRIVER_NAME
    devset = rig.vfio.register_device(dev)
    assert devset.devices == {dev}
    assert devset is not rig.vfio.devset_of(rig.vfs[0])


def test_register_requires_vfio_binding():
    r = KernelRig()
    with pytest.raises(VfioError):
        r.vfio.register_device(r.vfs[0])


def test_unregister_removes_from_devset(rig):
    vf = rig.vfs[0]
    devset = rig.vfio.devset_of(vf)
    rig.vfio.unregister_device(vf)
    assert vf not in devset.devices


# ----------------------------------------------------------------------
# open / close / reset
# ----------------------------------------------------------------------
def open_n_concurrently(r, n):
    handles = {}

    def opener(i):
        handle = yield from r.vfio.open_device(r.vfs[i], opener=f"qemu-{i}")
        handles[i] = (handle, r.sim.now)

    for i in range(n):
        r.sim.spawn(opener(i))
    r.run()
    return handles


def test_open_updates_open_counts(rig):
    handles = open_n_concurrently(rig, 3)
    devset = rig.vfio.devset_of(rig.vfs[0])
    assert devset.total_open_count == 3
    assert all(handles[i][0].device is rig.vfs[i] for i in range(3))


def test_coarse_opens_serialize_hierarchical_do_not():
    n = 8
    coarse = KernelRig(lock_policy="coarse", vf_count=n)
    coarse.bind_all_vfs_to_vfio()
    hier = KernelRig(lock_policy="hierarchical", vf_count=n)
    hier.bind_all_vfs_to_vfio()

    coarse_handles = open_n_concurrently(coarse, n)
    hier_handles = open_n_concurrently(hier, n)

    coarse_last = max(t for _h, t in coarse_handles.values())
    hier_last = max(t for _h, t in hier_handles.values())
    # Coarse: n serialized critical sections (plus the out-of-lock
    # ioctls). Hierarchical: all critical sections overlap.
    spec = coarse.spec
    critical = (
        spec.vfio_open_base_s
        + spec.vfio_bus_scan_per_device_s * (n + 1)
    )
    assert coarse_last == pytest.approx(
        n * critical + spec.vfio_register_ioctls_s, rel=0.05
    )
    assert hier_last == pytest.approx(
        critical + spec.vfio_register_ioctls_s, rel=0.05
    )
    # The serialized (under-lock) portion scales n-fold under coarse.
    coarse_locked = coarse_last - spec.vfio_register_ioctls_s
    hier_locked = hier_last - spec.vfio_register_ioctls_s
    assert coarse_locked == pytest.approx(n * hier_locked, rel=0.05)


def test_open_cost_scales_with_bus_population():
    small = KernelRig(vf_count=2)
    small.bind_all_vfs_to_vfio()
    big = KernelRig(vf_count=128)
    big.bind_all_vfs_to_vfio()
    t_small = _single_open_elapsed(small)
    t_big = _single_open_elapsed(big)
    # 126 extra devices on the bus cost 126 extra scan units.
    expected_delta = 126 * small.spec.vfio_bus_scan_per_device_s
    assert t_big - t_small == pytest.approx(expected_delta, rel=0.05)


def _single_open_elapsed(r):
    def opener():
        yield from r.vfio.open_device(r.vfs[0], opener="qemu")

    r.sim.spawn(opener())
    return r.run()


def test_close_decrements_and_double_close_raises(rig):
    state = {}

    def flow():
        handle = yield from rig.vfio.open_device(rig.vfs[0], opener="q")
        yield from rig.vfio.close_device(handle)
        state["count"] = rig.vfio.devset_of(rig.vfs[0]).total_open_count
        try:
            yield from rig.vfio.close_device(handle)
        except VfioError:
            state["double_close_raised"] = True

    rig.sim.spawn(flow())
    rig.run()
    assert state["count"] == 0
    assert state["double_close_raised"]


def test_reset_refused_while_any_device_open(rig):
    outcome = {}

    def flow():
        handle = yield from rig.vfio.open_device(rig.vfs[0], opener="q")
        try:
            yield from rig.vfio.reset_device(rig.vfs[1])
        except VfioError:
            outcome["refused"] = True
        yield from rig.vfio.close_device(handle)
        outcome["after_close"] = yield from rig.vfio.reset_device(rig.vfs[1])

    rig.sim.spawn(flow())
    rig.run()
    assert outcome["refused"]
    assert outcome["after_close"] is True


def test_reset_never_interleaves_with_inflight_open():
    """A reset arriving mid-open must wait for the open's critical
    section and then observe a *consistent* open count (refusal), never
    a half-done open — the exact consistency the devset lock protects."""
    for policy in ("coarse", "hierarchical"):
        r = KernelRig(lock_policy=policy)
        r.bind_all_vfs_to_vfio()
        log = {}

        def open_flow(r=r, log=log):
            yield from r.vfio.open_device(r.vfs[0], opener="q")
            # The critical section ended register_ioctls ago.
            log["open_critical_end"] = r.sim.now - r.spec.vfio_register_ioctls_s

        def resetter(r=r, log=log):
            try:
                yield from r.vfio.reset_device(r.vfs[1])
                log["reset"] = "succeeded"
            except VfioError:
                log["reset"] = "refused"
                log["reset_time"] = r.sim.now

        r.sim.spawn(open_flow())
        r.sim.spawn(resetter())
        r.run()
        assert log["reset"] == "refused", policy
        assert log["reset_time"] >= log["open_critical_end"], policy


# ----------------------------------------------------------------------
# DMA mapping pipeline
# ----------------------------------------------------------------------
def map_region(r, nbytes=16 * MIB, policy=EAGER_ZEROING, label="ram"):
    result = {}

    def flow():
        domain = r.vfio.create_domain("vm0")
        region = yield from r.vfio.dma_map(
            domain, owner="vm0", label=label, nbytes=nbytes,
            gpa_base=0, policy=policy,
        )
        result["region"] = region
        result["elapsed"] = r.sim.now

    r.sim.spawn(flow())
    r.run()
    return result


def test_eager_map_zeroes_pins_and_maps_everything(rig):
    result = map_region(rig)
    region = result["region"]
    assert all(page.is_zeroed for page in region.pages)
    assert all(page.pinned for page in region.pages)
    assert region.domain.mapped_bytes == 16 * MIB
    assert region.lazy_pages == []


def test_eager_map_time_dominated_by_zeroing(rig):
    """With hugepages, zeroing is >93% of mapping time (§3.2.3 P3)."""
    nbytes = 64 * MIB
    result = map_region(rig, nbytes=nbytes)
    zero_time = rig.spec.zeroing_cpu_seconds(nbytes)
    assert result["elapsed"] == pytest.approx(zero_time, rel=0.07)
    assert zero_time / result["elapsed"] > 0.93


def test_decoupled_map_skips_zeroing_and_registers_lazy(rig_fastiovd):
    r = rig_fastiovd
    result = map_region(r, policy=DECOUPLED_ZEROING)
    region = result["region"]
    assert not any(page.is_zeroed for page in region.pages)
    assert len(region.lazy_pages) == region.page_count
    assert all(r.fastiovd.manages("vm0", page) for page in region.pages)
    # Mapping without zeroing is orders of magnitude faster.
    eager = KernelRig(with_fastiovd=True)
    eager.bind_all_vfs_to_vfio()
    eager_result = map_region(eager)
    assert result["elapsed"] < eager_result["elapsed"] / 20


def test_decoupled_map_without_fastiovd_raises(rig):
    def flow():
        domain = rig.vfio.create_domain("vmx")
        yield from rig.vfio.dma_map(
            domain, owner="vmx", label="ram", nbytes=MIB,
            gpa_base=0, policy=DECOUPLED_ZEROING,
        )

    rig.sim.spawn(flow())
    from repro.sim.errors import ProcessFailed

    with pytest.raises(ProcessFailed):
        rig.run()


@pytest.mark.parametrize("fraction", [0.0, 0.5, 1.0])
def test_prezeroed_fraction_reduces_zeroing_cost(fraction):
    r = KernelRig()
    r.bind_all_vfs_to_vfio()
    policy = ZeroingPolicy(prezeroed_fraction=fraction)
    result = map_region(r, nbytes=64 * MIB, policy=policy)
    full = r.spec.zeroing_cpu_seconds(64 * MIB)
    expected = full * (1 - fraction)
    assert result["elapsed"] == pytest.approx(expected, rel=0.1, abs=2e-3)
    assert all(page.is_zeroed for page in result["region"].pages)


def test_prezeroed_fraction_validation():
    with pytest.raises(ValueError):
        ZeroingPolicy(prezeroed_fraction=1.5)


def test_fragmented_memory_raises_retrieval_cost():
    """P2: fragmentation means more batches, higher retrieve cost."""
    fresh = KernelRig()
    fresh.bind_all_vfs_to_vfio()
    fragged = KernelRig()
    fragged.bind_all_vfs_to_vfio()
    fragged.memory.fragment(max_run_bytes=fragged.memory.page_size)
    policy = ZeroingPolicy(prezeroed_fraction=1.0)  # isolate retrieval
    t_fresh = map_region(fresh, nbytes=64 * MIB, policy=policy)["elapsed"]
    t_frag = map_region(fragged, nbytes=64 * MIB, policy=policy)["elapsed"]
    assert t_frag > t_fresh * 1.5


def test_unmap_releases_everything(rig_fastiovd):
    r = rig_fastiovd
    result = map_region(r, policy=DECOUPLED_ZEROING)
    region = result["region"]

    def teardown():
        yield from r.vfio.dma_unmap(region)

    r.sim.spawn(teardown())
    r.run()
    assert region.domain.mapped_bytes == 0
    assert not any(page.pinned for page in region.pages)
    assert r.memory.allocated_bytes == 0
    assert r.fastiovd.pending_pages("vm0") == 0


def test_recycled_clean_pages_skip_zeroing_cost(rig):
    """Zeroed-then-freed frames cost nothing to re-map (eager path)."""
    first = map_region(rig, nbytes=16 * MIB)
    region = first["region"]

    def teardown():
        yield from rig.vfio.dma_unmap(region)

    rig.sim.spawn(teardown())
    start = rig.run()

    second = {}

    def remap():
        domain = rig.vfio.create_domain("vm1")
        r2 = yield from rig.vfio.dma_map(
            domain, owner="vm1", label="ram", nbytes=16 * MIB, gpa_base=0,
        )
        second["elapsed"] = rig.sim.now - start
        second["region"] = r2

    rig.sim.spawn(remap())
    rig.run()
    zero_time = rig.spec.zeroing_cpu_seconds(16 * MIB)
    assert second["elapsed"] < zero_time / 10
