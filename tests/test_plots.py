"""Tests for ASCII figure rendering."""

import pytest

from repro.metrics.plots import ascii_bars, ascii_cdf, ascii_gantt


def test_cdf_axes_and_markers():
    text = ascii_cdf({"a": [1.0, 2.0, 3.0], "b": [2.0, 4.0, 6.0]},
                     width=30, height=8, x_label="seconds")
    assert "1.00 |" in text
    assert "0.00 |" in text
    assert "*=a" in text and "o=b" in text
    assert "(seconds)" in text
    # x range spans the pooled values.
    assert "1.00" in text.splitlines()[-3]
    assert "6.00" in text.splitlines()[-3]


def test_cdf_single_value_series():
    text = ascii_cdf({"flat": [5.0, 5.0, 5.0]})
    assert "*" in text


def test_cdf_rejects_empty():
    with pytest.raises(ValueError):
        ascii_cdf({})


def test_gantt_draws_steps_in_time_order():
    timelines = [
        ("c0", [("0-cgroup", 0.0, 1.0), ("4-vfio-dev", 1.0, 4.0)]),
        ("c1", [("0-cgroup", 0.0, 1.0), ("4-vfio-dev", 1.0, 8.0)]),
    ]
    text = ascii_gantt(timelines, ("0-cgroup", "4-vfio-dev"), width=40)
    lines = text.splitlines()
    assert lines[1].strip().startswith("c0")
    row0 = lines[1]
    row1 = lines[2]
    # c1's vfio segment extends further right than c0's.
    assert row1.rstrip().rfind("4") > row0.rstrip().rfind("4")
    assert "legend:" in lines[-1]
    # Unknown steps are ignored.
    text2 = ascii_gantt([("c0", [("zz", 0, 1)])], ("0-cgroup",))
    assert "z" not in text2.splitlines()[1]


def test_gantt_caps_rows():
    timelines = [(f"c{i}", [("0-x", 0.0, 1.0)]) for i in range(50)]
    text = ascii_gantt(timelines, ("0-x",), max_rows=5)
    assert len(text.splitlines()) == 7  # header + 5 rows + legend


def test_gantt_rejects_empty():
    with pytest.raises(ValueError):
        ascii_gantt([], ("0-x",))


def test_bars_scale_to_peak():
    text = ascii_bars({"small": 1.0, "big": 10.0}, width=20)
    small_line, big_line = text.splitlines()
    assert small_line.count("#") == 2
    assert big_line.count("#") == 20
    assert "10.00s" in big_line


def test_bars_reject_empty():
    with pytest.raises(ValueError):
        ascii_bars({})
