"""Property-based end-to-end security tests.

The invariant the whole zeroing design protects: *a guest never
observes another tenant's residual memory*.  Eager zeroing (vanilla),
lazy zeroing (FastIOV), pre-zeroing fractions, and demand paging
(No-Net) must all preserve it across arbitrary tenant churn.  Every
guest read in the simulation enforces the check, so a clean run *is*
the proof; these tests drive randomized churn through all paths.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_host, get_preset
from repro.hw.memory import MIB
from repro.spec import HostSpec

SMALL_SPEC = HostSpec(
    memory_bytes=4 * 1024 * MIB,
    rom_bytes=4 * MIB,
    image_bytes=16 * MIB,
    nic_ring_bytes=2 * MIB,
    boot_touch_fraction=0.25,
    container_image_bytes=4 * MIB,
    jitter_sigma=0.05,
    fastiovd_scan_interval_s=0.002,  # aggressive scanner: maximize races
)
VM = 96 * MIB


churn_strategy = st.lists(
    st.tuples(
        st.sampled_from(["vanilla", "fastiov", "pre50", "no-net"]),
        st.integers(min_value=1, max_value=4),   # batch size
        st.booleans(),                           # write secrets?
    ),
    min_size=1,
    max_size=4,
)


@given(churn=churn_strategy, seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_no_tenant_ever_observes_residual_data(churn, seed):
    """Random preset/batch churn on one host-per-preset; every guest
    touch is leak-checked inside the simulation."""
    counter = [0]
    hosts = {}
    for preset, batch, write_secret in churn:
        host = hosts.get(preset)
        if host is None:
            host = build_host(preset, spec=SMALL_SPEC, vf_count=8, seed=seed)
            hosts[preset] = host
        prefix = f"t{counter[0]}-"
        counter[0] += 1
        result = host.launch(batch, memory_bytes=VM, name_prefix=prefix)
        assert all(record.failed is None for record in result.records)

        # Optionally have every container write secrets, then recycle.
        names = [f"{prefix}{i}" for i in range(batch)]

        def churn_flow(host=host, names=names, write_secret=write_secret):
            for name in names:
                container = host.engine.containers[name]
                if write_secret:
                    vm = container.microvm
                    gpa = vm.alloc_guest_range(4 * MIB, "secret")
                    yield from host.kvm.guest_touch_range(
                        vm.vm, gpa, 4 * MIB, write=True, tag=f"{name}-secret"
                    )
                yield from host.engine.remove_container(name)

        host.sim.spawn(churn_flow())
        host.sim.run()


@given(
    fraction=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=15, deadline=None)
def test_any_prezeroing_fraction_is_safe(fraction, seed):
    config = get_preset("vanilla").derive(
        name="pre-any", prezeroed_fraction=fraction
    )
    host = build_host(config, spec=SMALL_SPEC, vf_count=4, seed=seed)
    result = host.launch(2, memory_bytes=VM)
    assert all(record.failed is None for record in result.records)


@given(seed=st.integers(min_value=0, max_value=200))
@settings(max_examples=10, deadline=None)
def test_fastiov_scanner_races_never_leak_or_crash(seed):
    """Aggressive scanner + guest boot + virtio transfers + app touches,
    randomized by seed: the claim/in-flight protocol must hold."""
    from repro.workloads import make_app

    host = build_host("fastiov", spec=SMALL_SPEC, vf_count=8, seed=seed)
    result = host.launch(
        4, memory_bytes=VM, app_factory=lambda index: make_app("image")
    )
    assert all(record.failed is None for record in result.records)
    stats = host.fastiovd.stats
    # Every page was zeroed exactly once: fault + background counts
    # can never exceed registrations.
    assert stats.zeroed_pages <= stats.registered_pages
