"""Tests for the sharded cluster runner (repro.cluster.sharded).

The contract under test: splitting a cluster over K shard simulators
(optionally K worker processes) is a wall-clock optimization only.
Round-robin and burst placements must come back *byte-identical* to the
single-process run for every K and worker count; spread-arrival
least-loaded follows the deterministic epoch-barrier protocol, which is
invariant to K and workers (though intentionally a conservative
approximation of the single-process schedule).
"""

import json

import pytest

from repro.cluster import (
    cluster_arrivals,
    min_startup_lookahead,
    partition_hosts,
    peak_concurrency,
    run_cluster_cell,
    run_sharded_cluster,
)
from repro.core import PRESETS
from repro.spec import PAPER_TESTBED


def _bytes(summary):
    return json.dumps(summary, sort_keys=True)


def _single(preset, concurrency, hosts, seed=0, **kw):
    return run_cluster_cell(preset, concurrency, hosts=hosts, seed=seed,
                            shards=1, **kw)


# ----------------------------------------------------------------------
# Pure helpers
# ----------------------------------------------------------------------
def test_partition_hosts_is_contiguous_and_balanced():
    assert partition_hosts(6, 3) == [(0, 2), (2, 4), (4, 6)]
    assert partition_hosts(7, 3) == [(0, 3), (3, 5), (5, 7)]
    assert partition_hosts(5, 1) == [(0, 5)]
    assert partition_hosts(4, 4) == [(0, 1), (1, 2), (2, 3), (3, 4)]
    ranges = partition_hosts(48, 8)
    assert ranges[0][0] == 0 and ranges[-1][1] == 48
    sizes = [stop - start for start, stop in ranges]
    assert max(sizes) - min(sizes) <= 1
    assert all(a[1] == b[0] for a, b in zip(ranges, ranges[1:]))
    # Regression: 50 hosts over 8 shards must spread the remainder one
    # host at a time across the leading shards — never pile the whole
    # remainder onto one shard (a skew of up to shards-1 hosts).
    ranges = partition_hosts(50, 8)
    sizes = [stop - start for start, stop in ranges]
    assert sizes == [7, 7, 6, 6, 6, 6, 6, 6]
    assert ranges[0][0] == 0 and ranges[-1][1] == 50
    assert all(a[1] == b[0] for a, b in zip(ranges, ranges[1:]))
    # Property: the remainder never skews any split by more than one.
    for hosts in range(1, 97):
        for shards in range(1, hosts + 1):
            sizes = [stop - start
                     for start, stop in partition_hosts(hosts, shards)]
            assert sum(sizes) == hosts
            assert max(sizes) - min(sizes) <= 1, (hosts, shards)


def test_partition_hosts_rejects_bad_shard_counts():
    with pytest.raises(ValueError):
        partition_hosts(4, 0)
    with pytest.raises(ValueError):
        partition_hosts(4, 5)


def test_peak_concurrency_counts_overlap_with_arrivals_first_at_ties():
    assert peak_concurrency([]) == 0
    assert peak_concurrency([(0.0, 1.0), (2.0, 3.0)]) == 1
    assert peak_concurrency([(0.0, 2.0), (1.0, 3.0), (1.5, 4.0)]) == 3
    # An arrival at exactly a completion time counts as overlapping,
    # matching the in-simulator semantics (same-timestamp arrivals are
    # dispatched in spawn order, before the completion's bookkeeping).
    assert peak_concurrency([(0.0, 1.0), (1.0, 2.0)]) == 2


def test_lookahead_is_positive_for_every_preset():
    for name in PRESETS:
        spec = PAPER_TESTBED
        assert min_startup_lookahead(spec) > 0
        assert name  # every preset shares the testbed spec


def test_run_until_steps_clock_without_skipping_events():
    from repro.sim.core import Simulator, Timeout

    sim = Simulator()
    fired = []

    def proc():
        yield Timeout(1.0)
        fired.append(sim.now)
        yield Timeout(1.0)
        fired.append(sim.now)

    sim.spawn(proc())
    sim.run_until(0.5)
    assert sim.now == 0.5 and fired == []
    sim.run_until(1.0)
    assert sim.now == 1.0 and fired == [1.0]
    with pytest.raises(ValueError):
        sim.run_until(0.25)
    sim.run_until(5.0)
    assert sim.now == 5.0 and fired == [1.0, 2.0]


# ----------------------------------------------------------------------
# Byte-identity: burst and round-robin
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [2, 4, 8])
def test_burst_least_loaded_is_byte_identical_across_shards(shards):
    base = _bytes(_single("fastiov", 80, hosts=8, seed=7))
    sharded = run_cluster_cell(
        "fastiov", 80, hosts=8, seed=7, shards=shards
    )
    assert _bytes(sharded) == base


@pytest.mark.parametrize("preset", ["vanilla", "fastiov"])
def test_round_robin_is_byte_identical_across_shards(preset):
    base = _bytes(_single(preset, 60, hosts=6, seed=3,
                          placement="round-robin"))
    for shards in (2, 3, 6):
        sharded = run_cluster_cell(
            preset, 60, hosts=6, seed=3, placement="round-robin",
            shards=shards,
        )
        assert _bytes(sharded) == base, f"{preset} diverged at K={shards}"


def test_worker_count_never_changes_results():
    """Worker processes are transport, not semantics: 0 workers (all
    shards in-process) and one process per shard agree bytewise."""
    in_process = run_sharded_cluster(
        "fastiov", 48, hosts=6, seed=5, shards=3, workers=0
    )
    fanned_out = run_sharded_cluster(
        "fastiov", 48, hosts=6, seed=5, shards=3, workers=None
    )
    assert _bytes(in_process) == _bytes(fanned_out)


def test_shards_clamp_to_host_count():
    base = _bytes(_single("fastiov", 20, hosts=2, seed=1))
    sharded = run_cluster_cell("fastiov", 20, hosts=2, seed=1, shards=16)
    assert _bytes(sharded) == base


# ----------------------------------------------------------------------
# shards="auto": the hosts-per-shard threshold
# ----------------------------------------------------------------------
def test_resolve_shards_auto_picks_one_on_small_cells(capsys):
    from repro.cluster.sharded import MIN_HOSTS_PER_SHARD, resolve_shards

    # The quick scale cell (8 hosts): any split leaves fewer than the
    # threshold per shard, so auto must stay in-process — the measured
    # regression this guards against was 3.7 s sharded vs 2.3 s single.
    assert resolve_shards("auto", 8) == 1
    note = capsys.readouterr().err
    assert "single-shard" in note
    # Small-cell fallback at every size below one full shard pair.
    for hosts in (1, 2, MIN_HOSTS_PER_SHARD, 2 * MIN_HOSTS_PER_SHARD - 1):
        assert resolve_shards("auto", hosts) == 1


def test_resolve_shards_auto_respects_threshold_on_big_cells():
    import os

    from repro.cluster.sharded import MIN_HOSTS_PER_SHARD, resolve_shards

    resolved = resolve_shards("auto", 48)
    assert 1 <= resolved <= 48 // MIN_HOSTS_PER_SHARD
    assert resolved <= (os.cpu_count() or 1)


def test_resolve_shards_honors_explicit_counts():
    from repro.cluster.sharded import resolve_shards

    # An explicit count is a user decision: never second-guessed, only
    # clamped to the host count (and None means single-process).
    assert resolve_shards(4, 8) == 4
    assert resolve_shards(16, 8) == 8
    assert resolve_shards(1, 48) == 1
    assert resolve_shards(None, 48) == 1


def test_scale_experiment_resolves_auto_to_single_shard_on_quick_cells():
    from repro.experiments import get_experiment

    experiment = get_experiment("scale").configure(shards="auto")
    cells = experiment._cells(quick=True, seed=0)
    assert cells
    assert all(cell.shards == 1 for cell in cells)


def test_cli_shards_arg_accepts_auto_and_rejects_junk():
    import pytest as _pytest

    from repro.__main__ import shard_count

    assert shard_count("auto") == "auto"
    assert shard_count("4") == 4
    with _pytest.raises(Exception):
        shard_count("0")
    with _pytest.raises(Exception):
        shard_count("many")


# ----------------------------------------------------------------------
# Epoch-barrier protocol: spread arrivals
# ----------------------------------------------------------------------
def test_poisson_least_loaded_is_invariant_to_shards_and_workers():
    """The epoch-barrier schedule depends only on (seed, hosts), never
    on how hosts are grouped into shards or shards into processes."""
    reference = None
    for shards in (2, 3, 6):
        for workers in (0, None):
            summary = run_sharded_cluster(
                "fastiov", 60, hosts=6, seed=9, shards=shards,
                workers=workers, arrivals=cluster_arrivals(9, 15.0),
            )
            if reference is None:
                reference = _bytes(summary)
            else:
                assert _bytes(summary) == reference, (
                    f"diverged at K={shards} workers={workers}"
                )


def test_poisson_round_robin_matches_single_process_exactly():
    """Round-robin ignores load, so even spread arrivals are placed
    identically with zero synchronization."""
    base = _bytes(_single("vanilla", 40, hosts=4, seed=6,
                          placement="round-robin", rate_per_s=20.0))
    sharded = run_cluster_cell(
        "vanilla", 40, hosts=4, seed=6, placement="round-robin",
        shards=4, rate_per_s=20.0,
    )
    assert _bytes(sharded) == base


def test_poisson_least_loaded_approximation_stays_close():
    """The conservative epoch schedule may differ from single-process
    least-loaded, but the startup distribution must stay in family."""
    single = _single("fastiov", 60, hosts=6, seed=9, rate_per_s=15.0)
    sharded = run_cluster_cell(
        "fastiov", 60, hosts=6, seed=9, rate_per_s=15.0, shards=3
    )
    assert sharded["count"] == single["count"]
    assert sharded["free_vfs_total"] == single["free_vfs_total"]
    assert sharded["mean"] == pytest.approx(single["mean"], rel=0.05)
    assert sharded["p99"] == pytest.approx(single["p99"], rel=0.10)


# ----------------------------------------------------------------------
# Cluster edge cases (single-process and sharded)
# ----------------------------------------------------------------------
def test_burst_smaller_than_host_count():
    """3 invocations over 8 hosts: only 3 hosts ever see load, peaks
    are 0/1, and sharding agrees bytewise."""
    single = _single("fastiov", 3, hosts=8, seed=2)
    assert single["count"] == 3
    peaks = single["peak_load_per_host"]
    assert sorted(peaks, reverse=True) == [1, 1, 1, 0, 0, 0, 0, 0]
    sharded = run_cluster_cell("fastiov", 3, hosts=8, seed=2, shards=4)
    assert _bytes(sharded) == _bytes(single)


def test_single_host_cluster_matches_itself_sharded():
    """hosts=1 is the degenerate cluster: everything lands on host0."""
    single = _single("fastiov", 30, hosts=1, seed=4)
    assert single["peak_load_per_host"] == [30]
    assert single["free_vfs_total"] == PAPER_TESTBED.nic_max_vfs
    sharded = run_cluster_cell("fastiov", 30, hosts=1, seed=4, shards=8)
    assert _bytes(sharded) == _bytes(single)


def test_one_host_least_loaded_equals_round_robin():
    """With one host there is nothing to choose: both policies must
    produce byte-identical results."""
    least = _single("vanilla", 25, hosts=1, seed=8)
    robin = _single("vanilla", 25, hosts=1, seed=8,
                    placement="round-robin")
    assert _bytes(least) == _bytes(robin)


def test_vf_recycling_when_teardown_races_last_placement():
    """Spread arrivals longer than a lifecycle: early containers tear
    down (recycling VFs) while later ones are still being placed.  The
    pool must end full, and the sharded run must agree on it."""
    single = _single("fastiov", 40, hosts=2, seed=13, rate_per_s=10.0)
    # The race actually happened: peak concurrency stayed below the
    # burst size because teardowns freed slots before the last arrival.
    assert single["peak_in_flight"] < 40
    assert single["free_vfs_total"] == 2 * PAPER_TESTBED.nic_max_vfs
    sharded = run_cluster_cell(
        "fastiov", 40, hosts=2, seed=13, rate_per_s=10.0, shards=2
    )
    assert sharded["free_vfs_total"] == 2 * PAPER_TESTBED.nic_max_vfs
    assert sharded["count"] == 40


def test_shard_worker_failure_surfaces_as_runtime_error():
    with pytest.raises((ValueError, RuntimeError)):
        run_sharded_cluster("no-such-preset", 10, hosts=2, shards=2)


# ----------------------------------------------------------------------
# Optimistic sync: speculate past the barrier, roll back on conflict
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [2, 4, 8])
def test_optimistic_burst_is_byte_identical_across_shards(shards):
    """Burst cells place everything in epoch 0, so optimistic must hit
    the single-process bytes exactly — speculation only moves clocks."""
    base = _bytes(_single("fastiov", 80, hosts=8, seed=7))
    sharded = run_cluster_cell(
        "fastiov", 80, hosts=8, seed=7, shards=shards, sync="optimistic"
    )
    assert _bytes(sharded) == base


def test_optimistic_spread_matches_conservative_exactly():
    """The committed timeline is the conservative one: same barriers,
    same batches, same grid — for every shard count and transport."""
    reference = _bytes(run_sharded_cluster(
        "fastiov", 60, hosts=6, seed=9, shards=2, workers=0,
        arrivals=cluster_arrivals(9, 15.0), sync="conservative",
    ))
    for shards in (2, 3, 6):
        for workers in (0, None):
            summary = run_sharded_cluster(
                "fastiov", 60, hosts=6, seed=9, shards=shards,
                workers=workers, arrivals=cluster_arrivals(9, 15.0),
                sync="optimistic",
            )
            assert _bytes(summary) == reference, (
                f"optimistic diverged at K={shards} workers={workers}"
            )


def test_forced_rollback_replays_to_identical_results():
    """In-process optimistic speculates eagerly, so a spread cell is
    guaranteed to mis-speculate past incoming batches; every rollback
    must replay to the conservative bytes and be counted."""
    stats = {}
    optimistic = run_sharded_cluster(
        "fastiov", 60, hosts=6, seed=9, shards=3, workers=0,
        arrivals=cluster_arrivals(9, 15.0), sync="optimistic",
        engine_stats=stats,
    )
    conservative = run_sharded_cluster(
        "fastiov", 60, hosts=6, seed=9, shards=3, workers=0,
        arrivals=cluster_arrivals(9, 15.0), sync="conservative",
    )
    assert _bytes(optimistic) == _bytes(conservative)
    assert stats["sync_mode"] == "optimistic"
    assert stats["sync_rollbacks"] >= 1
    assert stats["sync_speculated_events"] > 0
    assert stats["sync_replayed_events"] > 0


def test_optimistic_survives_teardown_racing_last_placement():
    """Adversarial teardown timing: arrivals outlast lifecycles, so
    teardowns land mid-epoch while later batches are still being
    placed.  Speculated teardowns must stay shard-local until their
    epoch commits, and rollbacks must regenerate them exactly."""
    stats = {}
    optimistic = run_sharded_cluster(
        "fastiov", 40, hosts=2, seed=13, shards=2, workers=0,
        arrivals=cluster_arrivals(13, 10.0), sync="optimistic",
        engine_stats=stats,
    )
    conservative = run_sharded_cluster(
        "fastiov", 40, hosts=2, seed=13, shards=2, workers=0,
        arrivals=cluster_arrivals(13, 10.0), sync="conservative",
    )
    assert _bytes(optimistic) == _bytes(conservative)
    # The race happened and the pool still recycled completely.
    assert optimistic["peak_in_flight"] < 40
    assert optimistic["free_vfs_total"] == 2 * PAPER_TESTBED.nic_max_vfs
    assert stats["sync_rollbacks"] >= 1


def test_engine_stats_exports_sync_counters():
    stats = {}
    run_cluster_cell(
        "fastiov", 30, hosts=4, seed=2, shards=2, sync="optimistic",
        rate_per_s=12.0, workers=0, engine_stats=stats,
    )
    assert stats["shards"] == 2
    assert stats["sync_mode"] == "optimistic"
    for key in ("sync_epochs", "sync_rollbacks", "sync_speculated_events",
                "sync_replayed_events", "sync_speculation_commits",
                "sync_throttled_shards", "sync_barrier_wait_s",
                "sync_checkpoints", "sync_checkpoint_resumes",
                "sync_full_replays", "sync_checkpoint_age_epochs",
                "sync_rollback_depth_hist", "sync_replay_distance_hist"):
        assert key in stats, f"missing {key}"
    assert stats["sync_epochs"] > 0
    # In-process groups cannot sacrifice their own process image, so
    # they never fork checkpoints — every rollback is a full replay.
    assert stats["sync_checkpoints"] == 0
    assert stats["sync_full_replays"] == stats["sync_rollbacks"]


# ----------------------------------------------------------------------
# Hierarchical sync: relay tree, digest replies, pipelined coordinator
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [2, 4, 8])
def test_hierarchical_spread_is_byte_identical_across_shards(shards):
    """The relay tree, digest replies and depth-2 pipelining must not
    move a single byte: hierarchical == conservative == unsharded for
    every shard count and transport."""
    reference = _bytes(run_sharded_cluster(
        "fastiov", 60, hosts=8, seed=9, shards=1, workers=0,
        arrivals=cluster_arrivals(9, 15.0), sync="conservative",
    ))
    for workers in (0, None):
        summary = run_sharded_cluster(
            "fastiov", 60, hosts=8, seed=9, shards=shards,
            workers=workers, arrivals=cluster_arrivals(9, 15.0),
            sync="hierarchical",
        )
        assert _bytes(summary) == reference, (
            f"hierarchical diverged at K={shards} workers={workers}"
        )


@pytest.mark.parametrize("fan_in", [2, 3])
def test_hierarchical_fan_in_is_results_invariant(fan_in):
    """8 workers over fan-in 2 or 3 forms a real relay tree (the
    default fan-in of 4 covers 8 workers at depth 2 already); tree
    depth must be invisible in the results."""
    reference = _bytes(run_sharded_cluster(
        "fastiov", 60, hosts=8, seed=9, shards=8, workers=0,
        arrivals=cluster_arrivals(9, 15.0), sync="conservative",
    ))
    summary = run_sharded_cluster(
        "fastiov", 60, hosts=8, seed=9, shards=8, workers=None,
        arrivals=cluster_arrivals(9, 15.0), sync="hierarchical",
        fan_in=fan_in,
    )
    assert _bytes(summary) == reference


def test_hierarchical_rollback_storm_is_byte_identical(monkeypatch):
    """The adversarial regime (safe pinned to the barrier, windows
    pinned open) hammers the checkpoint handover *through the relay
    tree*: conflicts swap worker processes mid-run while up to two
    step requests ride the inherited pipes."""
    reference = _bytes(run_sharded_cluster(
        "fastiov", 60, hosts=8, seed=9, shards=2, workers=0,
        arrivals=cluster_arrivals(9, 15.0), sync="conservative",
    ))
    monkeypatch.setenv("REPRO_OPTIMISTIC_ADVERSARIAL_SAFE", "1")
    summary = run_sharded_cluster(
        "fastiov", 60, hosts=8, seed=9, shards=8, workers=None,
        arrivals=cluster_arrivals(9, 15.0), sync="hierarchical",
        fan_in=2, checkpoint_every=1,
    )
    assert _bytes(summary) == reference


def test_engine_stats_export_coordinator_occupancy():
    """The coordinator's occupancy split and the placement tracker's
    heap traffic ride the sync stats for every epoch-protocol cell."""
    for sync in ("conservative", "optimistic", "hierarchical"):
        stats = {}
        run_sharded_cluster(
            "fastiov", 40, hosts=8, seed=2, shards=2, workers=0,
            arrivals=cluster_arrivals(2, 12.0), sync=sync,
            engine_stats=stats,
        )
        for key in ("sync_coordinator_wait_s", "sync_coordinator_place_s",
                    "sync_coordinator_reduce_s", "sync_placement_heap_ops"):
            assert key in stats, f"{sync} missing {key}"
        assert stats["sync_coordinator_wait_s"] >= 0.0
        # Least-loaded runs the lazy heap: every arrival pushes at
        # least one entry, so the op count is bounded below by the
        # arrival count.
        assert stats["sync_placement_heap_ops"] >= 40


def test_heap_tracker_is_bit_identical_to_exact_scan():
    """Differential property test: the lazy min-heap tracker and the
    O(hosts) scan oracle must agree on every pick across interleaved
    place/release traffic, for several seeds."""
    import random

    from repro.cluster.placement import (
        LeastLoadedPlacement,
        LeastLoadedTracker,
        ScanTracker,
    )

    for seed in range(5):
        rng = random.Random(seed)
        hosts = rng.randrange(1, 40)
        heap = LeastLoadedTracker(hosts)
        scan = ScanTracker(hosts, LeastLoadedPlacement())
        placed = []
        for _ in range(400):
            if placed and rng.random() < 0.45:
                # Release a random prior placement, sometimes batched
                # (the digest path frees several at once).
                host = placed.pop(rng.randrange(len(placed)))
                count = 1
                while placed and count < 3 and rng.random() < 0.3:
                    try:
                        placed.remove(host)
                    except ValueError:
                        break
                    count += 1
                heap.release(host, count)
                scan.release(host, count)
            else:
                picked_heap = heap.pick()
                picked_scan = scan.pick()
                assert picked_heap == picked_scan, (
                    f"seed {seed}: heap {picked_heap} != scan {picked_scan}"
                )
                placed.append(picked_heap)
            assert heap.loads == scan.loads, f"seed {seed}: load drift"
        assert heap.heap_ops > 0


def test_coordinator_trace_track_is_opt_in(monkeypatch):
    """Wall-clock coordinator spans would break trace byte-identity
    across shard counts, so the track only appears under
    REPRO_TRACE_COORDINATOR=1 — and then as well-formed B/E pairs."""
    def traced():
        trace = {}
        run_sharded_cluster(
            "fastiov", 40, hosts=8, seed=2, shards=2, workers=0,
            arrivals=cluster_arrivals(2, 12.0), sync="hierarchical",
            trace=trace,
        )
        return trace

    monkeypatch.delenv("REPRO_TRACE_COORDINATOR", raising=False)
    assert "coordinator" not in traced()["tracks"]
    monkeypatch.setenv("REPRO_TRACE_COORDINATOR", "1")
    events = traced()["tracks"]["coordinator"]
    assert events, "no coordinator spans recorded"
    depth = 0
    kinds = set()
    for event in events:
        if event[0] == "B":
            depth += 1
            kinds.add(event[2])
        else:
            assert event[0] == "E"
            depth -= 1
        assert 0 <= depth <= 1
    assert depth == 0
    assert kinds <= {"wait", "place", "reduce"}
    assert "place" in kinds


# ----------------------------------------------------------------------
# resolve_shards / resolve_sync decision tables
# ----------------------------------------------------------------------
def test_resolve_shards_auto_decision_table(monkeypatch):
    """Pin the placement-plan-aware floors: auto must never pick a
    sharded config that benches slower than --shards 1 for the cell's
    synchronization needs (the epoch protocol pays 1-2 round-trips per
    epoch; zero-sync plans pay none)."""
    import os as _os

    from repro.cluster import sharded as mod

    monkeypatch.setattr(_os, "cpu_count", lambda: 8)
    table = [
        # (placement, rate, sync, hosts) -> expected
        ("round-robin", 150.0, "conservative", 64, 8),   # floor 8
        ("least-loaded", 0.0, "conservative", 64, 8),    # burst: floor 8
        ("least-loaded", 150.0, "conservative", 64, 2),  # epoch: floor 32
        ("least-loaded", 150.0, "optimistic", 64, 4),    # overlap: floor 16
        ("least-loaded", 150.0, "hierarchical", 64, 4),  # same floor as opt.
        ("least-loaded", 150.0, "auto", 64, 4),          # auto -> hierarchical
        # Below the floor every plan degrades to single-shard.
        ("least-loaded", 150.0, "conservative", 48, 1),
        ("least-loaded", 150.0, "optimistic", 8, 1),
        ("least-loaded", 150.0, "hierarchical", 8, 1),
        ("round-robin", 150.0, "hierarchical", 64, 8),   # zero-sync floor 8
        ("round-robin", 150.0, "conservative", 8, 1),
    ]
    for placement, rate, sync, hosts, expected in table:
        resolved = mod.resolve_shards(
            "auto", hosts, placement=placement, rate_per_s=rate, sync=sync
        )
        assert resolved == expected, (
            f"auto({placement}, rate={rate}, sync={sync}, hosts={hosts}) "
            f"= {resolved}, expected {expected}"
        )


def test_resolve_shards_auto_caps_at_cpu_count(monkeypatch):
    """More shards than cores just multiplies barrier latency, so auto
    is capped by ``os.cpu_count()`` whatever the placement plan."""
    import os as _os

    from repro.cluster import sharded as mod

    monkeypatch.setattr(_os, "cpu_count", lambda: 2)
    table = [
        # (placement, rate, sync, hosts) -> expected under 2 cores
        ("round-robin", 150.0, "conservative", 64, 2),   # 64//8=8 -> cap 2
        ("least-loaded", 0.0, "conservative", 256, 2),   # 256//8=32 -> cap 2
        ("least-loaded", 150.0, "optimistic", 64, 2),    # 64//16=4 -> cap 2
        ("least-loaded", 150.0, "hierarchical", 64, 2),  # 64//16=4 -> cap 2
        ("least-loaded", 150.0, "conservative", 64, 2),  # 64//32=2 at cap
        ("least-loaded", 150.0, "optimistic", 16, 1),    # floor binds first
        ("least-loaded", 150.0, "hierarchical", 16, 1),  # floor binds first
    ]
    for placement, rate, sync, hosts, expected in table:
        resolved = mod.resolve_shards(
            "auto", hosts, placement=placement, rate_per_s=rate, sync=sync
        )
        assert resolved == expected, (
            f"auto({placement}, rate={rate}, sync={sync}, hosts={hosts}) "
            f"= {resolved}, expected {expected} under cpu_count=2"
        )
    # cpu_count() may legitimately return None: treat it as one core.
    monkeypatch.setattr(_os, "cpu_count", lambda: None)
    assert mod.resolve_shards("auto", 256, placement="round-robin",
                              rate_per_s=150.0) == 1


def test_resolve_shards_auto_spread_never_beats_its_floor(monkeypatch):
    import os as _os

    from repro.cluster import sharded as mod

    monkeypatch.setattr(_os, "cpu_count", lambda: 64)
    for hosts in range(1, 129):
        for sync, floor in (("conservative", mod.MIN_HOSTS_PER_SHARD_EPOCH),
                            ("optimistic",
                             mod.MIN_HOSTS_PER_SHARD_OPTIMISTIC),
                            ("hierarchical",
                             mod.MIN_HOSTS_PER_SHARD_HIERARCHICAL)):
            resolved = mod.resolve_shards(
                "auto", hosts, placement="least-loaded",
                rate_per_s=100.0, sync=sync,
            )
            assert resolved == 1 or hosts // resolved >= floor


def test_resolve_sync_decision_table():
    from repro.cluster.sharded import resolve_sync

    assert resolve_sync(None) == "conservative"
    assert resolve_sync(None, shards=8) == "conservative"
    # No barrier to speculate past -> conservative, whatever was asked.
    assert resolve_sync("optimistic", shards=1) == "conservative"
    assert resolve_sync("optimistic", shards=4,
                        placement="round-robin") == "conservative"
    assert resolve_sync("auto", shards=1) == "conservative"
    assert resolve_sync("hierarchical", shards=1) == "conservative"
    assert resolve_sync("hierarchical", shards=4,
                        placement="round-robin") == "conservative"
    # The epoch protocol runs: requests are honored, auto goes fast —
    # the relay tree + pipelined coordinator, whose worker side is the
    # optimistic protocol and whose results are byte-identical.
    assert resolve_sync("optimistic", shards=4) == "optimistic"
    assert resolve_sync("conservative", shards=4) == "conservative"
    assert resolve_sync("hierarchical", shards=4) == "hierarchical"
    assert resolve_sync("auto", shards=4) == "hierarchical"
    with pytest.raises(ValueError):
        resolve_sync("yolo", shards=4)


def test_scale_experiment_threads_sync_into_cells():
    from repro.experiments import get_experiment

    experiment = get_experiment("scale").configure(
        shards=4, sync="optimistic", rate=150.0
    )
    cells = experiment._cells(quick=True, seed=0)
    assert cells
    assert all(cell.sync == "optimistic" for cell in cells)
    assert all(cell.rate_per_s == 150.0 for cell in cells)
