"""Unit tests for the discrete-event simulation core."""

import pytest

from repro.sim import SimulationDeadlock, Simulator, Timeout
from repro.sim.core import Join
from repro.sim.errors import InvalidCommand, ProcessFailed


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_single_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc():
        yield Timeout(1.5)
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [1.5]


def test_zero_timeout_completes_at_same_time():
    sim = Simulator()
    seen = []

    def proc():
        yield Timeout(0.0)
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [0.0]


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(delay, tag):
        yield Timeout(delay)
        order.append(tag)

    sim.spawn(proc(3.0, "c"))
    sim.spawn(proc(1.0, "a"))
    sim.spawn(proc(2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield Timeout(1.0)
        order.append(tag)

    for tag in ("first", "second", "third"):
        sim.spawn(proc(tag))
    sim.run()
    assert order == ["first", "second", "third"]


def test_process_result_via_join():
    sim = Simulator()
    results = []

    def child():
        yield Timeout(0.5)
        return 42

    def parent():
        proc = sim.spawn(child(), name="child")
        value = yield proc.join()
        results.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert results == [(0.5, 42)]


def test_join_on_finished_process_returns_immediately():
    sim = Simulator()
    results = []

    def child():
        return "done"
        yield  # pragma: no cover - makes this a generator

    def parent():
        proc = sim.spawn(child(), name="child")
        yield Timeout(1.0)
        value = yield proc.join()
        results.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert results == [(1.0, "done")]


def test_multiple_joiners_all_resume():
    sim = Simulator()
    resumed = []

    def child():
        yield Timeout(2.0)
        return "x"

    def parent(proc, tag):
        value = yield proc.join()
        resumed.append((tag, value))

    def root():
        proc = sim.spawn(child(), name="child")
        sim.spawn(parent(proc, "p1"))
        sim.spawn(parent(proc, "p2"))
        yield proc.join()

    sim.spawn(root())
    sim.run()
    assert sorted(resumed) == [("p1", "x"), ("p2", "x")]


def test_process_exception_propagates_with_cause():
    sim = Simulator()

    def bad():
        yield Timeout(0.1)
        raise RuntimeError("boom")

    sim.spawn(bad(), name="bad-proc")
    with pytest.raises(ProcessFailed) as excinfo:
        sim.run()
    assert "bad-proc" in str(excinfo.value)
    assert isinstance(excinfo.value.__cause__, RuntimeError)


def test_yielding_garbage_raises_invalid_command():
    sim = Simulator()

    def bad():
        yield 123

    sim.spawn(bad())
    with pytest.raises(InvalidCommand):
        sim.run()


def test_run_until_stops_clock_at_horizon():
    sim = Simulator()

    def proc():
        yield Timeout(100.0)

    sim.spawn(proc())
    sim.run(until=10.0)
    assert sim.now == 10.0
    sim.run()  # finish the rest
    assert sim.now == 100.0


def test_daemon_process_does_not_keep_simulation_alive():
    sim = Simulator()
    ticks = []

    def daemon():
        while True:
            yield Timeout(1.0)
            ticks.append(sim.now)

    def worker():
        yield Timeout(3.5)

    sim.spawn(daemon(), name="daemon", daemon=True)
    sim.spawn(worker())
    sim.run()
    assert sim.now == 3.5
    assert ticks == [1.0, 2.0, 3.0]


def test_deadlock_detection_names_blocked_process():
    from repro.sim import SimEvent

    sim = Simulator()

    def stuck():
        event = SimEvent(sim, name="never")
        yield event.wait()

    sim.spawn(stuck(), name="stuck-proc")
    with pytest.raises(SimulationDeadlock) as excinfo:
        sim.run()
    assert "stuck-proc" in str(excinfo.value)


def test_cannot_schedule_into_the_past():
    sim = Simulator()

    def proc():
        yield Timeout(5.0)
        sim.schedule(1.0, lambda: None)

    sim.spawn(proc())
    with pytest.raises(ProcessFailed):
        sim.run()


def test_spawn_auto_names_are_unique():
    sim = Simulator()

    def proc():
        yield Timeout(0.0)

    p1 = sim.spawn(proc())
    p2 = sim.spawn(proc())
    assert p1.name != p2.name


def test_nested_spawn_runs_child():
    sim = Simulator()
    log = []

    def child():
        yield Timeout(1.0)
        log.append("child")

    def parent():
        proc = sim.spawn(child())
        log.append("parent-before")
        yield proc.join()
        log.append("parent-after")

    sim.spawn(parent())
    sim.run()
    assert log == ["parent-before", "child", "parent-after"]


def test_join_command_repr_mentions_target():
    sim = Simulator()

    def child():
        yield Timeout(1.0)

    proc = sim.spawn(child(), name="target")
    assert "target" in repr(Join(proc))
    sim.run()
