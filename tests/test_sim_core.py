"""Unit tests for the discrete-event simulation core."""

import pytest

from repro.sim import SimulationDeadlock, Simulator, Timeout
from repro.sim.core import Join
from repro.sim.errors import InvalidCommand, ProcessFailed


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_single_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc():
        yield Timeout(1.5)
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [1.5]


def test_zero_timeout_completes_at_same_time():
    sim = Simulator()
    seen = []

    def proc():
        yield Timeout(0.0)
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [0.0]


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(delay, tag):
        yield Timeout(delay)
        order.append(tag)

    sim.spawn(proc(3.0, "c"))
    sim.spawn(proc(1.0, "a"))
    sim.spawn(proc(2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield Timeout(1.0)
        order.append(tag)

    for tag in ("first", "second", "third"):
        sim.spawn(proc(tag))
    sim.run()
    assert order == ["first", "second", "third"]


def test_process_result_via_join():
    sim = Simulator()
    results = []

    def child():
        yield Timeout(0.5)
        return 42

    def parent():
        proc = sim.spawn(child(), name="child")
        value = yield proc.join()
        results.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert results == [(0.5, 42)]


def test_join_on_finished_process_returns_immediately():
    sim = Simulator()
    results = []

    def child():
        return "done"
        yield  # pragma: no cover - makes this a generator

    def parent():
        proc = sim.spawn(child(), name="child")
        yield Timeout(1.0)
        value = yield proc.join()
        results.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert results == [(1.0, "done")]


def test_multiple_joiners_all_resume():
    sim = Simulator()
    resumed = []

    def child():
        yield Timeout(2.0)
        return "x"

    def parent(proc, tag):
        value = yield proc.join()
        resumed.append((tag, value))

    def root():
        proc = sim.spawn(child(), name="child")
        sim.spawn(parent(proc, "p1"))
        sim.spawn(parent(proc, "p2"))
        yield proc.join()

    sim.spawn(root())
    sim.run()
    assert sorted(resumed) == [("p1", "x"), ("p2", "x")]


def test_process_exception_propagates_with_cause():
    sim = Simulator()

    def bad():
        yield Timeout(0.1)
        raise RuntimeError("boom")

    sim.spawn(bad(), name="bad-proc")
    with pytest.raises(ProcessFailed) as excinfo:
        sim.run()
    assert "bad-proc" in str(excinfo.value)
    assert isinstance(excinfo.value.__cause__, RuntimeError)


def test_yielding_garbage_raises_invalid_command():
    sim = Simulator()

    def bad():
        yield 123

    sim.spawn(bad())
    with pytest.raises(InvalidCommand):
        sim.run()


def test_run_until_stops_clock_at_horizon():
    sim = Simulator()

    def proc():
        yield Timeout(100.0)

    sim.spawn(proc())
    sim.run(until=10.0)
    assert sim.now == 10.0
    sim.run()  # finish the rest
    assert sim.now == 100.0


def test_daemon_process_does_not_keep_simulation_alive():
    sim = Simulator()
    ticks = []

    def daemon():
        while True:
            yield Timeout(1.0)
            ticks.append(sim.now)

    def worker():
        yield Timeout(3.5)

    sim.spawn(daemon(), name="daemon", daemon=True)
    sim.spawn(worker())
    sim.run()
    assert sim.now == 3.5
    assert ticks == [1.0, 2.0, 3.0]


def test_deadlock_detection_names_blocked_process():
    from repro.sim import SimEvent

    sim = Simulator()

    def stuck():
        event = SimEvent(sim, name="never")
        yield event.wait()

    sim.spawn(stuck(), name="stuck-proc")
    with pytest.raises(SimulationDeadlock) as excinfo:
        sim.run()
    assert "stuck-proc" in str(excinfo.value)


def test_cannot_schedule_into_the_past():
    sim = Simulator()

    def proc():
        yield Timeout(5.0)
        sim.schedule(1.0, lambda: None)

    sim.spawn(proc())
    with pytest.raises(ProcessFailed):
        sim.run()


def test_spawn_auto_names_are_unique():
    sim = Simulator()

    def proc():
        yield Timeout(0.0)

    p1 = sim.spawn(proc())
    p2 = sim.spawn(proc())
    assert p1.name != p2.name


def test_nested_spawn_runs_child():
    sim = Simulator()
    log = []

    def child():
        yield Timeout(1.0)
        log.append("child")

    def parent():
        proc = sim.spawn(child())
        log.append("parent-before")
        yield proc.join()
        log.append("parent-after")

    sim.spawn(parent())
    sim.run()
    assert log == ["parent-before", "child", "parent-after"]


# ----------------------------------------------------------------------
# Engine-semantics pins: these nail down the documented guarantees the
# dispatch fast paths (ready ring + same-timestamp batch drain) must
# preserve bit-for-bit across any future engine rework.
# ----------------------------------------------------------------------

def test_equal_timestamp_fifo_across_heap_and_ring():
    """Events already queued at time t fire before events scheduled *at*
    time t by the first of them — heap batch before ring appends."""
    sim = Simulator()
    order = []

    def early(tag):
        yield Timeout(1.0)
        order.append(tag)
        # Scheduled once the clock is at 1.0: must run after every
        # same-timestamp event that was already pending.
        sim.schedule(1.0, order.append, f"{tag}-followup")

    def keepalive():
        # Bare callbacks don't keep the simulation alive, so hold it
        # open past the t=1.0 cohort.
        yield Timeout(2.0)

    for tag in ("a", "b", "c"):
        sim.spawn(early(tag))
    sim.spawn(keepalive())
    sim.run()
    assert order == ["a", "b", "c", "a-followup", "b-followup", "c-followup"]


def test_equal_timestamp_fifo_stress():
    """Hundreds of same-time events, mixed spawn/schedule, exact order."""
    sim = Simulator()
    order = []

    def proc(tag):
        yield Timeout(2.5)
        order.append(tag)

    expected = []
    for index in range(200):
        if index % 3 == 0:
            sim.schedule(2.5, order.append, index)
        else:
            sim.spawn(proc(index))
            # spawn's first step runs at t=0; the Timeout lands at 2.5
            # with a later seq than any direct schedule made so far.
        expected.append(index)
    sim.run()
    # Spawned processes take their first step at t=0 (in spawn order)
    # and all re-enter the t=2.5 cohort in that same order, interleaved
    # with the directly scheduled callbacks by scheduling order.
    direct = [i for i in range(200) if i % 3 == 0]
    spawned = [i for i in range(200) if i % 3 != 0]
    assert order == direct + spawned


def test_zero_delay_timeouts_fifo_with_lock_grants():
    """Zero-delay resumes and grant resumes share one FIFO ordering."""
    from repro.sim import Mutex

    sim = Simulator()
    lock = Mutex(sim)
    order = []

    def holder():
        yield lock.acquire()
        yield Timeout(1.0)
        lock.release()
        order.append("released")

    def waiter():
        yield Timeout(1.0)
        order.append("pre-acquire")
        yield lock.acquire()
        order.append("granted")
        lock.release()

    def bystander():
        yield Timeout(1.0)
        order.append("bystander-1")
        yield Timeout(0.0)
        order.append("bystander-2")

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.spawn(bystander())
    sim.run()
    # At t=1.0 the cohort fires in scheduling order (waiter, bystander,
    # holder); the release's grant lands in the ready ring *behind*
    # bystander's already-queued zero-delay resume.
    assert order == [
        "pre-acquire", "bystander-1", "released", "bystander-2", "granted",
    ]


def test_schedule_rejects_past_times_directly():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)

    sim.spawn(proc())
    sim.run()
    assert sim.now == 1.0
    with pytest.raises(ValueError, match="cannot schedule into the past"):
        sim.schedule(0.999, lambda: None)
    # Scheduling exactly at the current time is allowed.
    sim.schedule(1.0, lambda: None)


def test_run_until_between_events_does_not_execute_later_ones():
    sim = Simulator()
    fired = []

    def proc():
        yield Timeout(1.0)
        fired.append(sim.now)
        yield Timeout(9.0)
        fired.append(sim.now)

    sim.spawn(proc())
    sim.run(until=4.0)
    assert sim.now == 4.0
    assert fired == [1.0]
    sim.run(until=10.0)
    assert sim.now == 10.0
    assert fired == [1.0, 10.0]


def test_run_until_exactly_on_event_executes_it():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "at-horizon")

    def keepalive():
        yield Timeout(100.0)

    sim.spawn(keepalive())
    sim.run(until=3.0)
    assert fired == ["at-horizon"]
    assert sim.now == 3.0


def test_deadlock_reports_all_blocked_nondaemon_processes():
    from repro.sim import SimEvent

    sim = Simulator()
    event = SimEvent(sim, name="never")

    def stuck(tag):
        yield event.wait()

    sim.spawn(stuck("s1"), name="stuck-1")
    sim.spawn(stuck("s2"), name="stuck-2")
    with pytest.raises(SimulationDeadlock) as excinfo:
        sim.run()
    message = str(excinfo.value)
    assert "2 process(es)" in message
    assert "stuck-1" in message and "stuck-2" in message


def test_events_dispatched_counts_all_events():
    sim = Simulator()

    def proc():
        yield Timeout(0.0)   # ready-ring path
        yield Timeout(1.0)   # heap path

    sim.spawn(proc())
    assert sim.pending_events == 1
    sim.run()
    # spawn step + zero-delay resume + timed resume
    assert sim.events_dispatched == 3
    assert sim.pending_events == 0


# ----------------------------------------------------------------------
# Cancellable timers (Timer handles) and lazy-deletion accounting.
# ----------------------------------------------------------------------

def test_cancelled_timer_never_fires_and_never_dispatches():
    sim = Simulator()
    fired = []
    timer = sim.call_later(1.0, fired.append, "nope")

    def keepalive():
        yield Timeout(2.0)

    sim.spawn(keepalive())
    assert timer.active and timer.when == 1.0
    assert timer.cancel() is True
    assert timer.cancel() is False  # idempotent
    assert not timer.active and timer.when is None
    sim.run()
    assert fired == []
    # spawn step + keepalive timeout only — the cancelled timer must not
    # count as a dispatched event.
    assert sim.events_dispatched == 2


def test_cancel_after_fire_is_a_noop():
    sim = Simulator()
    fired = []
    timer = sim.call_later(1.0, fired.append, "yes")

    def keepalive():
        yield Timeout(2.0)

    sim.spawn(keepalive())
    sim.run()
    assert fired == ["yes"]
    assert not timer.active
    assert timer.cancel() is False


def test_stale_timer_handle_cannot_cancel_recycled_entry():
    """Entry bodies are pooled; a handle to a dead timer must not reach
    through the free list and cancel an unrelated newer timer."""
    sim = Simulator()
    fired = []
    stale = sim.call_later(1.0, fired.append, "first")
    stale.cancel()
    # Drain so the tombstone is reaped and its body recycled.
    def spin():
        yield Timeout(1.5)

    sim.spawn(spin())
    sim.run()
    fresh = sim.call_later(1.0, fired.append, "second")
    assert stale.cancel() is False
    assert fresh.active
    sim.spawn(spin())
    sim.run()
    assert fired == ["second"]


def test_timers_must_be_strictly_future():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.call_later(0.0, lambda: None)
    with pytest.raises(ValueError):
        sim.call_later(-1.0, lambda: None)
    with pytest.raises(ValueError):
        sim.call_at(0.0, lambda: None)


def test_pending_events_exact_under_lazy_deletion():
    """Cancelled-but-unreaped timers must not inflate pending_events or
    len(sim)."""
    sim = Simulator()
    timers = [sim.call_later(5.0 + i, lambda: None) for i in range(8)]
    assert sim.pending_events == 8
    assert len(sim) == 8
    for timer in timers[:5]:
        timer.cancel()
    # The five tombstones are still physically stored (lazy deletion),
    # but accounting is exact.
    assert sim.pending_events == 3
    assert len(sim) == 3
    for timer in timers[5:]:
        timer.cancel()
    assert sim.pending_events == 0
    assert len(sim) == 0
    sim.run()  # nothing live: returns immediately, clock unchanged
    assert sim.now == 0.0


def test_mass_cancellation_triggers_compaction():
    sim = Simulator()
    for _ in range(3):
        timers = [sim.call_later(60.0 + i * 0.01, lambda: None) for i in range(500)]
        for timer in timers:
            timer.cancel()
    stats = sim.wheel_stats()
    assert stats["timers_cancelled"] == 1500
    assert stats["compactions"] >= 1
    assert sim.pending_events == 0
    # The engine still runs correctly afterwards.
    fired = []
    sim.call_later(0.5, fired.append, "ok")

    def keepalive():
        yield Timeout(1.0)

    sim.spawn(keepalive())
    sim.run()
    assert fired == ["ok"]


def test_insert_behind_advanced_window_after_run_until():
    """A far-future timer can park the wheel cursor way ahead of the
    clock during run_until; inserts landing in the gap (the sharded
    epoch protocol's submit-after-barrier shape) must still fire at the
    right time and in the right order."""
    sim = Simulator()
    fired = []
    sim.call_later(900.0, fired.append, "watchdog")
    sim.run_until(1.0)  # cursor races to the 900 s slot, clock stops at 1
    assert sim.now == 1.0
    # These land behind the advanced window.
    sim.schedule(1.5, fired.append, "near-a")
    sim.schedule(1.25, fired.append, "near-b")
    sim.schedule(400.0, fired.append, "mid")
    sim.run_until(2.0)
    assert fired == ["near-b", "near-a"]
    sim.run_until(1000.0)
    assert fired == ["near-b", "near-a", "mid", "watchdog"]
    assert sim.pending_events == 0


def test_wheel_stats_reports_engine_counters():
    sim = Simulator()
    sim.call_later(1000.0, lambda: None)  # far future: spill level
    cancelled = sim.call_later(0.5, lambda: None)
    cancelled.cancel()

    def keepalive():
        yield Timeout(1500.0)

    sim.spawn(keepalive())
    sim.run()
    stats = sim.wheel_stats()
    assert stats["engine"] == "timing-wheel"
    assert stats["spill_rebuckets"] >= 1
    assert stats["timers_cancelled"] == 1
    assert stats["max_bucket_occupancy"] >= 1
    assert stats["pending_events"] == 0


def test_join_command_repr_mentions_target():
    sim = Simulator()

    def child():
        yield Timeout(1.0)

    proc = sim.spawn(child(), name="target")
    assert "target" in repr(Join(proc))
    sim.run()
