"""Unit tests for the processor-sharing CPU model."""

import pytest

from repro.sim import FairShareCPU, Simulator, Timeout


def run_jobs(cores, jobs):
    """Run (start_delay, amount) jobs; return [(tag, finish_time)]."""
    sim = Simulator()
    cpu = FairShareCPU(sim, cores=cores)
    finishes = []

    def proc(tag, delay, amount):
        if delay:
            yield Timeout(delay)
        yield cpu.work(amount)
        finishes.append((tag, sim.now))

    for tag, (delay, amount) in enumerate(jobs):
        sim.spawn(proc(tag, delay, amount))
    sim.run()
    return sim, cpu, dict(finishes)


def test_single_job_runs_at_full_speed():
    _sim, _cpu, finish = run_jobs(4, [(0.0, 2.0)])
    assert finish[0] == pytest.approx(2.0)


def test_jobs_within_capacity_do_not_interfere():
    _sim, _cpu, finish = run_jobs(4, [(0.0, 2.0)] * 4)
    assert all(t == pytest.approx(2.0) for t in finish.values())


def test_oversubscription_stretches_elapsed_time():
    # 8 jobs of 1 core-second on 2 cores: each runs at 0.25 cores.
    _sim, _cpu, finish = run_jobs(2, [(0.0, 1.0)] * 8)
    assert all(t == pytest.approx(4.0) for t in finish.values())


def test_job_cannot_exceed_one_core():
    # 1 job on a 56-core socket still takes its full single-thread time.
    _sim, _cpu, finish = run_jobs(56, [(0.0, 3.0)])
    assert finish[0] == pytest.approx(3.0)


def test_departures_speed_up_remaining_jobs():
    # Two jobs on one core: 1.0 and 3.0 core-seconds.
    # Shared until t=2 (each has done 1.0); job0 leaves; job1 finishes
    # its remaining 2.0 alone at t=4.
    _sim, _cpu, finish = run_jobs(1, [(0.0, 1.0), (0.0, 3.0)])
    assert finish[0] == pytest.approx(2.0)
    assert finish[1] == pytest.approx(4.0)


def test_late_arrival_shares_fairly():
    # One core. Job0 (2.0) starts at t=0, job1 (1.0) at t=1.
    # t in [0,1): job0 alone, does 1.0. t in [1,?): both at 0.5.
    # Job0 remaining 1.0 -> done at t=3; job1 remaining 1.0 -> t=3.
    _sim, _cpu, finish = run_jobs(1, [(0.0, 2.0), (1.0, 1.0)])
    assert finish[0] == pytest.approx(3.0)
    assert finish[1] == pytest.approx(3.0)


def test_zero_work_completes_immediately():
    _sim, _cpu, finish = run_jobs(2, [(0.5, 0.0)])
    assert finish[0] == pytest.approx(0.5)


def test_negative_work_rejected():
    sim = Simulator()
    cpu = FairShareCPU(sim, cores=1)
    with pytest.raises(ValueError):
        cpu.work(-1.0)
    with pytest.raises(ValueError):
        FairShareCPU(sim, cores=0)


def test_total_core_seconds_is_conserved():
    amounts = [0.3, 1.7, 2.2, 0.9, 4.0]
    _sim, cpu, _finish = run_jobs(2, [(0.1 * i, a) for i, a in enumerate(amounts)])
    assert cpu.total_core_seconds == pytest.approx(sum(amounts), rel=1e-6)


def test_utilization_bounded_and_sane():
    sim = Simulator()
    cpu = FairShareCPU(sim, cores=2)

    def proc():
        yield cpu.work(2.0)

    sim.spawn(proc())
    sim.run()
    util = cpu.utilization()
    # 2.0 core-seconds of a 2-core socket over 2 s elapsed = 0.5.
    assert util == pytest.approx(0.5)


def test_makespan_matches_total_work_under_saturation():
    # 200 jobs x 0.57 core-seconds on 56 cores, all started together:
    # makespan = 200 * 0.57 / 56 (processor sharing finishes together).
    n, amount, cores = 200, 0.57, 56
    _sim, _cpu, finish = run_jobs(cores, [(0.0, amount)] * n)
    expected = n * amount / cores
    assert max(finish.values()) == pytest.approx(expected, rel=1e-6)


def test_rate_per_job_property():
    sim = Simulator()
    cpu = FairShareCPU(sim, cores=4)
    assert cpu.rate_per_job == 0.0

    def proc():
        yield cpu.work(1.0)

    for _ in range(8):
        sim.spawn(proc())
    sim.run(until=0.5)
    assert cpu.rate_per_job == pytest.approx(0.5)
    sim.run()


# ----------------------------------------------------------------------
# numerical-guard regression: float drift must never stall completion
# ----------------------------------------------------------------------
def test_tiny_work_at_huge_virtual_time_terminates():
    """A work amount below the clock's ulp cannot advance ``now``.

    At t=1e16 the float ulp is 2.0 s, so ``now + amount/rate`` rounds
    back to ``now`` for small amounts and the completion event makes no
    virtual-time progress.  The scheduler's guard must finish the head
    job anyway instead of re-arming the same event forever.
    """
    sim = Simulator()
    cpu = FairShareCPU(sim, cores=4)
    done = []

    def proc(tag, amount):
        yield Timeout(1e16)
        yield cpu.work(amount)
        done.append(tag)

    sim.spawn(proc("a", 1e-3))
    sim.run()
    assert done == ["a"]
    assert sim.now >= 1e16


def test_adversarial_amount_mix_terminates_and_completes_all():
    """Amounts spanning 19 orders of magnitude at a huge epoch all finish."""
    sim = Simulator()
    cpu = FairShareCPU(sim, cores=2)
    done = []
    amounts = [1e-9, 1e-3, 2.0, 1e-6, 0.5, 3e-12, 1.0, 1e10]

    def proc(tag, amount):
        yield Timeout(1e15 + tag)  # stagger admits across the epoch
        yield cpu.work(amount)
        done.append(tag)

    for tag, amount in enumerate(amounts):
        sim.spawn(proc(tag, amount))
    sim.run()
    assert sorted(done) == list(range(len(amounts)))
    # Work conservation still holds to float accuracy at this scale.
    assert cpu.total_core_seconds == pytest.approx(sum(amounts), rel=1e-6)


def test_zero_progress_guard_finishes_jobs_in_tag_order():
    """When the guard fires, jobs retire in fair-queueing finish order."""
    sim = Simulator()
    cpu = FairShareCPU(sim, cores=1)
    done = []

    def proc(tag, amount):
        yield Timeout(4e15)
        yield cpu.work(amount)
        done.append(tag)

    # Both amounts are far below the ulp of 4e15 (0.5 s): neither can
    # move the clock, so completion order must follow the finish tags.
    sim.spawn(proc("small", 1e-6))
    sim.spawn(proc("large", 1e-1))
    sim.run()
    assert done == ["small", "large"]


def test_reap_stale_cancels_superseded_completions():
    """With reap_stale=True, superseded completion events are cancelled
    timers (never dispatched) instead of version-guarded no-ops — same
    results, fewer dispatched events."""
    sim_plain = Simulator()
    sim_reap = Simulator()
    done_plain, done_reap = [], []

    def workload(sim, cpu, done):
        def proc(tag, start, amount):
            yield Timeout(start)
            yield cpu.work(amount)
            done.append((tag, round(sim.now, 9)))

        # Staggered admissions force repeated rescheduling, so the plain
        # engine accumulates stale completion events.
        for i in range(20):
            sim.spawn(proc(i, 0.01 * i, 0.3 + 0.01 * (i % 5)))

    cpu_plain = FairShareCPU(sim_plain, cores=4)
    cpu_reap = FairShareCPU(sim_reap, cores=4, reap_stale=True)
    workload(sim_plain, cpu_plain, done_plain)
    workload(sim_reap, cpu_reap, done_reap)
    sim_plain.run()
    sim_reap.run()
    assert done_reap == done_plain
    assert sim_reap.now == sim_plain.now
    assert sim_reap.events_dispatched < sim_plain.events_dispatched
    assert sim_reap.wheel_stats()["timers_cancelled"] > 0
