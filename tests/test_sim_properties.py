"""Property-based tests for the simulation kernel (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FairShareCPU, Mutex, RWLock, Simulator, Timeout

# ----------------------------------------------------------------------
# FairShareCPU
# ----------------------------------------------------------------------
jobs_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),   # start delay
        st.floats(min_value=0.01, max_value=10.0),  # work amount
    ),
    min_size=1,
    max_size=20,
)


@given(jobs=jobs_strategy, cores=st.integers(min_value=1, max_value=8))
@settings(max_examples=150, deadline=None)
def test_fair_share_cpu_conserves_work_and_bounds_makespan(jobs, cores):
    sim = Simulator()
    cpu = FairShareCPU(sim, cores=cores)
    finish = {}

    def proc(index, delay, amount):
        if delay:
            yield Timeout(delay)
        start = sim.now
        yield cpu.work(amount)
        finish[index] = (start, sim.now)

    for index, (delay, amount) in enumerate(jobs):
        sim.spawn(proc(index, delay, amount))
    sim.run()

    total_work = sum(amount for _d, amount in jobs)
    # Conservation: executed core-seconds equal requested work.
    assert cpu.total_core_seconds == pytest.approx(total_work, rel=1e-6)
    # Each job takes at least its single-thread time...
    for index, (delay, amount) in enumerate(jobs):
        start, end = finish[index]
        assert end - start >= amount - 1e-9
    # ...and the makespan is bounded by serial execution.
    last_end = max(end for _s, end in finish.values())
    last_arrival = max(delay for delay, _a in jobs)
    assert last_end <= last_arrival + total_work + 1e-6
    # Lower bound: work cannot beat the aggregate capacity.
    first_arrival = min(delay for delay, _a in jobs)
    assert last_end >= first_arrival + total_work / cores - 1e-6


# ----------------------------------------------------------------------
# Mutex: mutual exclusion under random hold times
# ----------------------------------------------------------------------
@given(
    holds=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=2.0),
            st.floats(min_value=0.0, max_value=1.0),
        ),
        min_size=2,
        max_size=15,
    )
)
@settings(max_examples=100, deadline=None)
def test_mutex_never_double_held(holds):
    sim = Simulator()
    mutex = Mutex(sim)
    state = {"inside": 0, "violations": 0}
    spans = []

    def proc(delay, hold):
        yield Timeout(delay)
        yield mutex.acquire()
        state["inside"] += 1
        if state["inside"] > 1:
            state["violations"] += 1
        start = sim.now
        if hold:
            yield Timeout(hold)
        state["inside"] -= 1
        mutex.release()
        spans.append((start, sim.now))

    for delay, hold in holds:
        sim.spawn(proc(delay, hold))
    sim.run()
    assert state["violations"] == 0
    assert len(spans) == len(holds)
    # Non-zero-length critical sections never overlap.
    spans.sort()
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert s2 >= e1 - 1e-12


# ----------------------------------------------------------------------
# RWLock: the reader/writer invariant under random schedules
# ----------------------------------------------------------------------
@given(
    ops=st.lists(
        st.tuples(
            st.booleans(),  # writer?
            st.floats(min_value=0.0, max_value=2.0),
            st.floats(min_value=0.0, max_value=0.5),
        ),
        min_size=2,
        max_size=15,
    )
)
@settings(max_examples=100, deadline=None)
def test_rwlock_invariant_under_random_schedules(ops):
    sim = Simulator()
    lock = RWLock(sim)
    state = {"readers": 0, "writers": 0, "violations": 0}

    def check():
        if state["writers"] > 1 or (state["writers"] and state["readers"]):
            state["violations"] += 1

    def reader(delay, hold):
        yield Timeout(delay)
        yield lock.acquire_read()
        state["readers"] += 1
        check()
        if hold:
            yield Timeout(hold)
        state["readers"] -= 1
        lock.release_read()

    def writer(delay, hold):
        yield Timeout(delay)
        yield lock.acquire_write()
        state["writers"] += 1
        check()
        if hold:
            yield Timeout(hold)
        state["writers"] -= 1
        lock.release_write()

    for is_writer, delay, hold in ops:
        sim.spawn(writer(delay, hold) if is_writer else reader(delay, hold))
    sim.run()
    assert state["violations"] == 0


# ----------------------------------------------------------------------
# Determinism of the whole kernel
# ----------------------------------------------------------------------
@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=25, deadline=None)
def test_jitter_streams_are_stable(seed):
    from repro.sim.rng import Jitter

    a = Jitter(seed).fork("x")
    b = Jitter(seed).fork("x")
    c = Jitter(seed).fork("y")
    draws_a = [a.factor(0.2) for _ in range(5)]
    draws_b = [b.factor(0.2) for _ in range(5)]
    draws_c = [c.factor(0.2) for _ in range(5)]
    assert draws_a == draws_b
    assert draws_a != draws_c
    assert all(f > 0 for f in draws_a)
