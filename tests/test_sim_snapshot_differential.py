"""Differential property test: snapshot → speculate → restore → replay.

The optimistic sharded protocol's correctness rests on one primitive:
rolling an engine back must leave *no trace* of the speculated work.
These tests drive randomized callback/timer workloads to a cut point,
snapshot the engine (checkpointing the plain-data model state
alongside, as :meth:`Simulator.snapshot` requires), speculate ahead —
dispatching events, arming and cancelling timers, recycling pool slots
— then restore and re-run.  The observable outcome (event log, dispatch
count, clock, pending accounting, wheel statistics) must be
byte-identical to the same plan executed straight through with no
snapshot at all.

Workloads are callback-only by design: the snapshot contract excludes
generator processes (an instruction pointer is not copyable), which is
why the cluster layer rolls back by journal replay instead — see
``repro.cluster.sharded``.
"""

import random

from repro.sim import Simulator

#: Quarter of the default bucket width, as in the wheel differential
#: suite: quantized delays force equal timestamps and shared buckets.
QUANTUM = 0.00025

N_CASES = 200


def build_plan(seed):
    """One randomized callback workload as pure data (engine-agnostic).

    Each initial event carries a small action program; actions log,
    spawn chained callbacks, arm cancellable timers into a shared id
    pool, or cancel timers out of it.  Delay bands span same-bucket,
    cross-bucket, and beyond-the-wheel (spill heap) distances so the
    snapshot covers every event container.
    """
    rng = random.Random(seed ^ 0x5AFE)

    def delay(positive=False):
        band = rng.random()
        if band < 0.20:
            # Timers reject non-positive delays; plain schedules allow 0.
            return QUANTUM if positive else 0.0
        if band < 0.55:
            return QUANTUM * rng.randint(1, 8)
        if band < 0.85:
            return QUANTUM * rng.randint(1, 4000)
        return QUANTUM * rng.randint(4000, 40000)

    def action(depth):
        ops = []
        for _ in range(rng.randint(0, 3)):
            roll = rng.random()
            if roll < 0.35 and depth < 3:
                ops.append(("spawn", delay(), action(depth + 1)))
            elif roll < 0.70:
                ops.append(("arm", rng.randint(0, 11), delay(positive=True)))
            else:
                ops.append(("cancel", rng.randint(0, 11)))
        return ops

    initial = [
        (QUANTUM * rng.randint(0, 30000), action(0))
        for _ in range(rng.randint(4, 10))
    ]
    span = QUANTUM * 50000
    cut = rng.uniform(0.0, span * 0.8)
    if rng.random() < 0.5:
        cut = QUANTUM * round(cut / QUANTUM)  # land exactly on events
    target = rng.uniform(cut, span * 1.2)
    return {"initial": initial, "cut": cut, "target": target}


def run_plan(plan, rollback):
    """Execute a plan; returns (log, dispatched, now, pending, stats).

    With ``rollback`` the run snapshots at the cut point, speculates to
    the target, restores (engine and checkpointed model together), and
    re-runs — the straight-line run skips the detour.  Everything else
    is identical, so any difference is snapshot/restore leakage.
    """
    sim = Simulator()
    model = {"log": [], "timers": {}, "next_tag": 0}

    def fire(tag, ops):
        model["log"].append((tag, sim.now, sim.events_dispatched))
        for op in ops:
            if op[0] == "spawn":
                child = model["next_tag"] = model["next_tag"] + 1
                sim.schedule(sim.now + op[1], fire, f"{tag}/{child}", op[2])
            elif op[0] == "arm":
                tid = op[1]
                old = model["timers"].pop(tid, None)
                if old is not None:
                    old.cancel()
                model["timers"][tid] = sim.call_later(
                    op[2], fire, f"t{tid}@{tag}", ()
                )
            else:
                timer = model["timers"].pop(op[1], None)
                if timer is not None:
                    timer.cancel()

    for index, (when, ops) in enumerate(plan["initial"]):
        sim.schedule(when, fire, f"i{index}", ops)

    sim.run_until(plan["cut"])
    if rollback:
        snap = sim.snapshot()
        # Model checkpoint rides alongside the engine snapshot: the log
        # as a copy, the timer table as a shallow copy — pre-snapshot
        # handles become valid again on restore, post-snapshot handles
        # simply are not in the checkpoint.
        saved = (list(model["log"]), dict(model["timers"]),
                 model["next_tag"])
        sim.run_until(plan["target"])  # speculate (and mutate freely)
        sim.restore(snap)
        model["log"], model["timers"], model["next_tag"] = saved
    sim.run_until(plan["target"])
    sim.run_until(plan["target"] + QUANTUM * 100000)  # drain the tail
    return (model["log"], sim.events_dispatched, sim.now,
            sim.pending_events, sim.wheel_stats())


def test_rollback_replay_matches_straight_line_on_randomized_plans():
    mismatches = []
    for seed in range(N_CASES):
        plan = build_plan(seed)
        straight = run_plan(plan, rollback=False)
        replayed = run_plan(plan, rollback=True)
        if straight != replayed:
            mismatches.append(seed)
    assert not mismatches, (
        f"rollback+replay diverged from straight-line on seeds "
        f"{mismatches[:10]} ({len(mismatches)}/{N_CASES} cases)"
    )


def test_double_rollback_of_the_same_snapshot_is_stable():
    # A snapshot is a value, not a one-shot: restoring it twice (the
    # shape of a shard that mis-speculates twice past one frontier)
    # replays identically both times.
    for seed in (3, 41, 99):
        plan = build_plan(seed)
        straight = run_plan(plan, rollback=False)

        sim = Simulator()
        model = {"log": [], "timers": {}, "next_tag": 0}

        def fire(tag, ops, sim=sim, model=model):
            model["log"].append((tag, sim.now, sim.events_dispatched))
            for op in ops:
                if op[0] == "spawn":
                    child = model["next_tag"] = model["next_tag"] + 1
                    sim.schedule(
                        sim.now + op[1], fire, f"{tag}/{child}", op[2]
                    )
                elif op[0] == "arm":
                    old = model["timers"].pop(op[1], None)
                    if old is not None:
                        old.cancel()
                    model["timers"][op[1]] = sim.call_later(
                        op[2], fire, f"t{op[1]}@{tag}", ()
                    )
                else:
                    timer = model["timers"].pop(op[1], None)
                    if timer is not None:
                        timer.cancel()

        for index, (when, ops) in enumerate(plan["initial"]):
            sim.schedule(when, fire, f"i{index}", ops)
        sim.run_until(plan["cut"])
        snap = sim.snapshot()
        saved = (list(model["log"]), dict(model["timers"]),
                 model["next_tag"])
        for _ in range(2):
            sim.run_until(plan["target"])
            sim.restore(snap)
            model["log"], model["timers"], model["next_tag"] = (
                list(saved[0]), dict(saved[1]), saved[2]
            )
        sim.run_until(plan["target"])
        sim.run_until(plan["target"] + QUANTUM * 100000)
        assert (model["log"], sim.events_dispatched, sim.now,
                sim.pending_events, sim.wheel_stats()) == straight


# ----------------------------------------------------------------------
# Targeted snapshot/restore units
# ----------------------------------------------------------------------
def test_restore_rewinds_clock_dispatch_count_and_pending():
    sim = Simulator()
    log = []
    for index in range(8):
        sim.schedule(0.01 * (index + 1), log.append, index)
    sim.run_until(0.035)
    assert log == [0, 1, 2]
    snap = sim.snapshot()
    pending = sim.pending_events
    sim.run(until=1.0)
    assert log == list(range(8))
    sim.restore(snap)
    assert sim.now == 0.035
    assert sim.events_dispatched == 3
    assert sim.pending_events == pending
    sim.run(until=1.0)
    assert log == list(range(8)) + [3, 4, 5, 6, 7]


def test_restore_reinstates_presnapshot_timer_handle():
    sim = Simulator()
    fired = []
    timer = sim.call_later(0.5, fired.append, "armed-before")
    sim.run_until(0.1)
    snap = sim.snapshot()
    sim.run(until=1.0)  # speculation consumes the timer, frees its slot
    assert fired == ["armed-before"] and not timer.active
    sim.restore(snap)
    assert timer.active and timer.when == 0.5
    assert timer.cancel() is True
    sim.run(until=1.0)
    assert fired == ["armed-before"]  # the restored timeline cancelled it


def test_post_snapshot_timer_handle_is_inert_after_restore():
    sim = Simulator()
    fired = []
    sim.run_until(0.1)
    snap = sim.snapshot()
    speculative = sim.call_later(0.2, fired.append, "speculative")
    sim.restore(snap)
    assert speculative.cancel() is False
    assert not speculative.active
    sim.run(until=1.0)
    assert fired == []
    assert sim.pending_events == 0


def test_snapshot_covers_spill_heap_beyond_the_wheel_window():
    # Events past the 256-slot window live on the spill heap; a restore
    # must bring them back in the same order, including ones the
    # speculated run already re-bucketed onto the wheel.
    sim = Simulator(bucket_width=0.001)
    log = []
    for index in range(6):
        sim.schedule(0.3 + 0.001 * index, log.append, index)  # all spill
    snap = sim.snapshot()
    sim.run_until(0.302)  # re-buckets the spill, dispatches a prefix
    assert log == [0, 1, 2]
    sim.restore(snap)
    log.clear()
    sim.run(until=1.0)
    assert log == [0, 1, 2, 3, 4, 5]
