"""Unit tests for simulated synchronization primitives."""

import pytest

from repro.sim import Mutex, Resource, RWLock, SimEvent, Simulator, Timeout
from repro.sim.errors import SimError


# ----------------------------------------------------------------------
# Mutex
# ----------------------------------------------------------------------
def test_mutex_uncontended_acquire_is_instant():
    sim = Simulator()
    mutex = Mutex(sim)
    times = []

    def proc():
        yield mutex.acquire()
        times.append(sim.now)
        mutex.release()

    sim.spawn(proc())
    sim.run()
    assert times == [0.0]
    assert mutex.stats.acquisitions == 1
    assert mutex.stats.contended == 0


def test_mutex_serializes_critical_sections():
    sim = Simulator()
    mutex = Mutex(sim)
    spans = []

    def proc(tag):
        yield mutex.acquire()
        start = sim.now
        yield Timeout(1.0)
        mutex.release()
        spans.append((tag, start, sim.now))

    for tag in range(3):
        sim.spawn(proc(tag))
    sim.run()
    assert [s[1:] for s in sorted(spans)] == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]


def test_mutex_fifo_order():
    sim = Simulator()
    mutex = Mutex(sim)
    order = []

    def proc(tag, delay):
        yield Timeout(delay)
        yield mutex.acquire()
        order.append(tag)
        yield Timeout(1.0)
        mutex.release()

    sim.spawn(proc("a", 0.0))
    sim.spawn(proc("b", 0.1))
    sim.spawn(proc("c", 0.2))
    sim.run()
    assert order == ["a", "b", "c"]


def test_mutex_wait_statistics():
    sim = Simulator()
    mutex = Mutex(sim)

    def holder():
        yield mutex.acquire()
        yield Timeout(2.0)
        mutex.release()

    def waiter():
        yield Timeout(0.5)
        yield mutex.acquire()
        mutex.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run()
    assert mutex.stats.acquisitions == 2
    assert mutex.stats.contended == 1
    assert mutex.stats.total_wait == pytest.approx(1.5)
    assert mutex.stats.max_wait == pytest.approx(1.5)
    assert mutex.stats.max_queue == 1


def test_mutex_release_without_hold_raises():
    sim = Simulator()
    mutex = Mutex(sim)
    with pytest.raises(SimError):
        mutex.release()


# ----------------------------------------------------------------------
# RWLock
# ----------------------------------------------------------------------
def test_rwlock_readers_share():
    sim = Simulator()
    lock = RWLock(sim)
    done = []

    def reader(tag):
        yield lock.acquire_read()
        yield Timeout(1.0)
        lock.release_read()
        done.append((tag, sim.now))

    for tag in range(4):
        sim.spawn(reader(tag))
    sim.run()
    assert all(t == 1.0 for _tag, t in done)


def test_rwlock_writer_excludes_readers():
    sim = Simulator()
    lock = RWLock(sim)
    log = []

    def writer():
        yield lock.acquire_write()
        log.append(("w-start", sim.now))
        yield Timeout(1.0)
        lock.release_write()
        log.append(("w-end", sim.now))

    def reader():
        yield Timeout(0.5)
        yield lock.acquire_read()
        log.append(("r-start", sim.now))
        lock.release_read()

    sim.spawn(writer())
    sim.spawn(reader())
    sim.run()
    assert ("r-start", 1.0) in log  # reader waited for the writer


def test_rwlock_fifo_prevents_writer_starvation():
    """A reader arriving behind a queued writer must wait for it."""
    sim = Simulator()
    lock = RWLock(sim)
    log = []

    def long_reader():
        yield lock.acquire_read()
        yield Timeout(2.0)
        lock.release_read()

    def writer():
        yield Timeout(0.5)
        yield lock.acquire_write()
        log.append(("writer", sim.now))
        yield Timeout(1.0)
        lock.release_write()

    def late_reader():
        yield Timeout(1.0)
        yield lock.acquire_read()
        log.append(("late-reader", sim.now))
        lock.release_read()

    sim.spawn(long_reader())
    sim.spawn(writer())
    sim.spawn(late_reader())
    sim.run()
    assert log == [("writer", 2.0), ("late-reader", 3.0)]


def test_rwlock_release_errors():
    sim = Simulator()
    lock = RWLock(sim)
    with pytest.raises(SimError):
        lock.release_read()
    with pytest.raises(SimError):
        lock.release_write()


def test_rwlock_batches_consecutive_readers():
    sim = Simulator()
    lock = RWLock(sim)
    starts = []

    def writer():
        yield lock.acquire_write()
        yield Timeout(1.0)
        lock.release_write()

    def reader(tag):
        yield Timeout(0.5)
        yield lock.acquire_read()
        starts.append(sim.now)
        yield Timeout(1.0)
        lock.release_read()

    sim.spawn(writer())
    for tag in range(3):
        sim.spawn(reader(tag))
    sim.run()
    assert starts == [1.0, 1.0, 1.0]


# ----------------------------------------------------------------------
# Resource
# ----------------------------------------------------------------------
def test_resource_capacity_limits_concurrency():
    sim = Simulator()
    pool = Resource(sim, capacity=2)
    starts = []

    def proc(tag):
        yield pool.request()
        starts.append((tag, sim.now))
        yield Timeout(1.0)
        pool.release()

    for tag in range(4):
        sim.spawn(proc(tag))
    sim.run()
    start_times = sorted(t for _tag, t in starts)
    assert start_times == [0.0, 0.0, 1.0, 1.0]


def test_resource_bulk_request_waits_for_units():
    sim = Simulator()
    pool = Resource(sim, capacity=3)
    log = []

    def small():
        yield pool.request(2)
        yield Timeout(1.0)
        pool.release(2)

    def big():
        yield Timeout(0.1)
        yield pool.request(3)
        log.append(sim.now)
        pool.release(3)

    sim.spawn(small())
    sim.spawn(big())
    sim.run()
    assert log == [1.0]


def test_resource_invalid_requests():
    sim = Simulator()
    pool = Resource(sim, capacity=2)
    with pytest.raises(ValueError):
        pool.request(0)
    with pytest.raises(ValueError):
        pool.request(3)
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)
    with pytest.raises(SimError):
        pool.release(1)


# ----------------------------------------------------------------------
# Contention statistics — uniform across all queued primitives
# ----------------------------------------------------------------------
def test_uncontended_acquires_record_no_queueing_anywhere():
    """Immediately granted requests must not count toward max_queue or
    enqueued on any primitive — the accounting sits on the enqueue path
    and only fires for requests still waiting after dispatch."""
    sim = Simulator()
    mutex = Mutex(sim)
    rwlock = RWLock(sim)
    pool = Resource(sim, capacity=4)

    def proc():
        yield mutex.acquire()
        mutex.release()
        yield rwlock.acquire_read()
        rwlock.release_read()
        yield rwlock.acquire_write()
        rwlock.release_write()
        yield pool.request(2)
        pool.release(2)

    sim.spawn(proc())
    sim.run()
    for stats in (mutex.stats, rwlock.stats, pool.stats):
        assert stats.contended == 0
        assert stats.enqueued == 0
        assert stats.max_queue == 0
        assert stats.total_wait == 0.0


def test_contention_stats_consistent_across_primitives():
    """The same hold-then-stack-N-waiters pattern yields the same
    max_queue/enqueued/wait numbers on Mutex, RWLock, and Resource."""
    sim = Simulator()
    mutex = Mutex(sim)
    rwlock = RWLock(sim)
    pool = Resource(sim, capacity=1)

    primitives = (
        ("mutex", mutex, mutex.acquire, mutex.release),
        ("rwlock", rwlock, rwlock.acquire_write, rwlock.release_write),
        ("pool", pool, pool.request, pool.release),
    )

    def holder(acquire, release):
        yield acquire()
        yield Timeout(3.0)
        release()

    def waiter(acquire, release, delay):
        yield Timeout(delay)
        yield acquire()
        release()

    for _name, _prim, acquire, release in primitives:
        sim.spawn(holder(acquire, release))
        # Waiters at t=1 and t=2: queue depths 1 then 2, waits 2.0 + 1.0.
        sim.spawn(waiter(acquire, release, 1.0))
        sim.spawn(waiter(acquire, release, 2.0))
    sim.run()

    for name, prim, _acquire, _release in primitives:
        stats = prim.stats
        assert stats.acquisitions == 3, name
        assert stats.contended == 2, name
        assert stats.enqueued == 2, name
        assert stats.max_queue == 2, name
        assert stats.total_wait == pytest.approx(3.0), name
        assert stats.max_wait == pytest.approx(2.0), name


def test_rwlock_read_and_write_share_one_queue_accounting():
    sim = Simulator()
    lock = RWLock(sim)

    def writer():
        yield lock.acquire_write()
        yield Timeout(2.0)
        lock.release_write()

    def reader(delay):
        yield Timeout(delay)
        yield lock.acquire_read()
        lock.release_read()

    sim.spawn(writer())
    sim.spawn(reader(0.5))
    sim.spawn(reader(1.0))
    sim.run()
    assert lock.stats.enqueued == 2
    assert lock.stats.max_queue == 2
    assert lock.stats.contended == 2
    assert lock.stats.total_wait == pytest.approx(1.5 + 1.0)


# ----------------------------------------------------------------------
# SimEvent
# ----------------------------------------------------------------------
def test_event_wakes_all_waiters_with_payload():
    sim = Simulator()
    event = SimEvent(sim)
    got = []

    def waiter(tag):
        value = yield event.wait()
        got.append((tag, value, sim.now))

    def trigger():
        yield Timeout(2.0)
        event.trigger("ready")

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.spawn(trigger())
    sim.run()
    assert sorted(got) == [("a", "ready", 2.0), ("b", "ready", 2.0)]


def test_wait_on_triggered_event_is_instant():
    sim = Simulator()
    event = SimEvent(sim)
    got = []

    def proc():
        event.trigger(7)
        yield Timeout(1.0)
        value = yield event.wait()
        got.append((value, sim.now))

    sim.spawn(proc())
    sim.run()
    assert got == [(7, 1.0)]


def test_event_double_trigger_raises():
    sim = Simulator()
    event = SimEvent(sim)
    event.trigger()
    with pytest.raises(SimError):
        event.trigger()


# ----------------------------------------------------------------------
# Bounded waits (timeout= / TIMED_OUT)
# ----------------------------------------------------------------------
def test_mutex_acquire_timeout_delivers_sentinel():
    from repro.sim import TIMED_OUT

    sim = Simulator()
    mutex = Mutex(sim)
    got = []

    def holder():
        yield mutex.acquire()
        yield Timeout(2.0)
        mutex.release()

    def impatient():
        value = yield mutex.acquire(timeout=0.5)
        got.append((value, sim.now))

    sim.spawn(holder())
    sim.spawn(impatient())
    sim.run()
    assert got == [(TIMED_OUT, 0.5)]
    assert mutex.stats.timeouts == 1
    # The abandoned request must not receive the lock at release time.
    assert not mutex.locked


def test_mutex_grant_before_timeout_cancels_watchdog():
    from repro.sim import TIMED_OUT

    sim = Simulator()
    mutex = Mutex(sim)
    got = []

    def holder():
        yield mutex.acquire()
        yield Timeout(0.2)
        mutex.release()

    def patient():
        value = yield mutex.acquire(timeout=5.0)
        got.append((value, sim.now))
        mutex.release()

    sim.spawn(holder())
    sim.spawn(patient())
    sim.run()
    assert got == [(None, 0.2)]
    assert mutex.stats.timeouts == 0
    # The cancelled watchdog never fires: the clock stops at the last
    # real event, not at the 5.0 s timeout horizon.
    assert sim.now == 0.2


def test_mutex_trylock_timeout_zero():
    from repro.sim import TIMED_OUT

    sim = Simulator()
    mutex = Mutex(sim)
    got = []

    def holder():
        yield mutex.acquire(timeout=0)   # uncontended: granted
        got.append("held")
        yield Timeout(1.0)
        mutex.release()

    def trier():
        yield Timeout(0.5)
        value = yield mutex.acquire(timeout=0)
        got.append("timed-out" if value is TIMED_OUT else "granted")

    sim.spawn(holder())
    sim.spawn(trier())
    sim.run()
    assert got == ["held", "timed-out"]


def test_abandoned_waiter_is_skipped_and_next_gets_grant():
    from repro.sim import TIMED_OUT

    sim = Simulator()
    mutex = Mutex(sim)
    order = []

    def holder():
        yield mutex.acquire()
        yield Timeout(1.0)
        mutex.release()

    def quitter():
        value = yield mutex.acquire(timeout=0.5)
        order.append(("quitter", value is TIMED_OUT, sim.now))

    def steady():
        yield Timeout(0.1)
        value = yield mutex.acquire()
        order.append(("steady", value is TIMED_OUT, sim.now))
        mutex.release()

    sim.spawn(holder())
    sim.spawn(quitter())
    sim.spawn(steady())
    sim.run()
    # quitter was ahead of steady in the queue, timed out at 0.5, and the
    # release at 1.0 skipped its abandoned request.
    assert order == [("quitter", True, 0.5), ("steady", False, 1.0)]


def test_rwlock_reader_timeout_behind_writer():
    from repro.sim import TIMED_OUT

    sim = Simulator()
    lock = RWLock(sim)
    got = []

    def writer():
        yield lock.acquire_write()
        yield Timeout(2.0)
        lock.release_write()

    def reader():
        value = yield lock.acquire_read(timeout=1.0)
        got.append(value)

    sim.spawn(writer())
    sim.spawn(reader())
    sim.run()
    assert got == [TIMED_OUT]
    assert lock.stats.timeouts == 1


def test_resource_request_timeout_and_lazy_dequeue():
    from repro.sim import TIMED_OUT

    sim = Simulator()
    pool = Resource(sim, capacity=1)
    got = []

    def hog():
        yield pool.request()
        yield Timeout(3.0)
        pool.release()

    def big_then_small():
        value = yield pool.request(timeout=1.0)
        got.append(("first", value is TIMED_OUT))
        value = yield pool.request(timeout=5.0)
        got.append(("second", value is TIMED_OUT, sim.now))
        pool.release()

    sim.spawn(hog())
    sim.spawn(big_then_small())
    sim.run()
    assert got == [("first", True), ("second", False, 3.0)]
    assert pool.stats.timeouts == 1
    assert pool.in_use == 0


def test_negative_timeout_rejected_by_primitives():
    sim = Simulator()
    mutex = Mutex(sim)
    with pytest.raises(ValueError):
        mutex.acquire(timeout=-1.0)


def test_lock_stats_wait_accounting_two_waiters():
    """Hand-computed total/max wait for a two-waiter pile-up.

    holder takes the mutex at t=0 and holds it 1.0 s; A requests at
    t=0 and is granted at 1.0 (waited 1.0), holds 1.0 s; B requests at
    t=0.5 and is granted at 2.0 (waited 1.5).  So: 3 acquisitions, 2
    contended, total_wait 2.5, max_wait 1.5 — and as_dict() mirrors
    every field (it feeds the flight recorder's lock counters).
    """
    sim = Simulator()
    mutex = Mutex(sim, name="m")

    def holder():
        yield mutex.acquire()
        yield Timeout(1.0)
        mutex.release()

    def waiter_a():
        yield mutex.acquire()
        assert sim.now == pytest.approx(1.0)
        yield Timeout(1.0)
        mutex.release()

    def waiter_b():
        yield Timeout(0.5)
        yield mutex.acquire()
        assert sim.now == pytest.approx(2.0)
        mutex.release()

    sim.spawn(holder())
    sim.spawn(waiter_a())
    sim.spawn(waiter_b())
    sim.run()

    stats = mutex.stats
    assert stats.acquisitions == 3
    assert stats.contended == 2
    assert stats.enqueued == 2
    assert stats.total_wait == pytest.approx(2.5)
    assert stats.max_wait == pytest.approx(1.5)
    assert stats.mean_wait == pytest.approx(2.5 / 3)
    assert stats.as_dict() == {
        "acquisitions": 3,
        "contended": 2,
        "enqueued": 2,
        "total_wait": pytest.approx(2.5),
        "max_wait": pytest.approx(1.5),
        "max_queue": 2,  # B joined while A still queued
        "timeouts": 0,
    }
