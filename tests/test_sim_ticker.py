"""Tests for the aggregated daemon ticker (repro.sim.ticker).

The contract: a population of daemons parked on one
:class:`DaemonTicker` behaves *observably identically* to the same
daemons sleeping on private ``Timeout`` timers — same virtual
timestamps, same ``pending_events``, same ``events_dispatched`` — while
the engine schedules one event per phase group instead of one per
daemon.
"""

import pytest

from repro.sim import DaemonTicker, Simulator, Timeout

INTERVAL = 0.004


def _run_daemons(aggregated, daemons, ticks, busy_every):
    """Run the scanner-shaped workload both ways; return its trace.

    Every daemon ticks at INTERVAL; a driver flags a rotating subset
    busy (off-phase so flag writes never share a tick timestamp).
    Returns (wake log, checkpoints, sim, ticker).
    """
    sim = Simulator()
    work = [False] * daemons
    log = []
    ticker = DaemonTicker(sim, INTERVAL) if aggregated else None

    def scanner(index):
        if ticker is not None:
            park = ticker.park(lambda: work[index])
            while True:
                yield park
                log.append((index, sim.now))
                work[index] = False
        else:
            while True:
                yield Timeout(INTERVAL)
                if work[index]:
                    log.append((index, sim.now))
                    work[index] = False

    def driver():
        yield Timeout(INTERVAL / 2)
        for step in range(ticks):
            for j in range((step * 3) % busy_every, daemons, busy_every):
                work[j] = True
            yield Timeout(INTERVAL)

    for index in range(daemons):
        sim.spawn(scanner(index), daemon=True)
    sim.spawn(driver())

    checkpoints = []
    horizon = INTERVAL * (ticks + 2)
    for fraction in (0.25, 0.5, 1.0):
        sim.run_until(horizon * fraction)
        checkpoints.append(
            (sim.now, sim.pending_events, sim.events_dispatched)
        )
    return log, checkpoints, sim, ticker


def test_aggregated_ticks_match_per_timer_daemons_exactly():
    base_log, base_ckpt, _, _ = _run_daemons(
        False, daemons=40, ticks=60, busy_every=8
    )
    aggr_log, aggr_ckpt, _, ticker = _run_daemons(
        True, daemons=40, ticks=60, busy_every=8
    )
    # Same daemons woke at the same virtual times, in the same order.
    assert aggr_log == base_log
    assert base_log  # the workload actually produced wakes
    # Accounting parity at every epoch boundary, not just the end.
    assert aggr_ckpt == base_ckpt
    # And the ticker really did aggregate: far fewer ticks than the
    # per-daemon world's 40 * 60 individual timer fires.
    assert ticker.ticks_fired < 40 * 60 / 4


def test_idle_parks_are_skips_not_wakes():
    sim = Simulator()
    ticker = DaemonTicker(sim, INTERVAL)
    wakes = []

    def daemon():
        park = ticker.park(lambda: False)  # never ready
        while True:
            yield park
            wakes.append(sim.now)

    for _ in range(10):
        sim.spawn(daemon(), daemon=True)
    # Half-interval pad: the chained float sums drift a few ULPs past
    # the exact multiples, so an exact horizon can miss the last tick.
    sim.run_until(INTERVAL * 20.5)
    assert wakes == []
    assert ticker.wakes == 0
    assert ticker.ticks_fired == 20
    assert ticker.skips == 10 * 20
    assert ticker.members_peak == 10
    assert ticker.parked == 10


def test_phantom_accounting_keeps_pending_events_per_member():
    sim = Simulator()
    ticker = DaemonTicker(sim, INTERVAL)

    def daemon():
        park = ticker.park(lambda: False)
        while True:
            yield park

    for _ in range(7):
        sim.spawn(daemon(), daemon=True)
    sim.run_until(INTERVAL / 2)
    # One phase group (one real event) still reports 7 pending events,
    # exactly as 7 private timers would.
    assert ticker.parked == 7
    assert len(ticker._groups) == 1
    assert sim.pending_events == 7
    sim.run_until(INTERVAL * 5.5)
    assert sim.pending_events == 7


def test_busy_daemons_drift_off_phase_and_regroup():
    sim = Simulator()
    ticker = DaemonTicker(sim, INTERVAL)
    ready = [True]
    wakes = []

    def daemon(delay):
        yield Timeout(delay)  # stagger the initial phase
        park = ticker.park(lambda: ready[0])
        while True:
            yield park
            wakes.append(sim.now)

    sim.spawn(daemon(0.0), daemon=True)
    sim.spawn(daemon(0.001), daemon=True)
    sim.run_until(INTERVAL * 3)
    # Different phases -> separate groups, both daemons still tick.
    assert len({round(t % INTERVAL, 9) for t in wakes}) == 2
    stats = ticker.stats()
    assert stats["member_wakes"] == len(wakes)
    assert stats["phase_groups"] == 2


def test_stats_shape_and_interval_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        DaemonTicker(sim, 0.0)
    ticker = DaemonTicker(sim, INTERVAL)
    stats = ticker.stats()
    assert stats == {
        "interval_s": INTERVAL,
        "ticks_fired": 0,
        "member_wakes": 0,
        "member_skips": 0,
        "members_peak": 0,
        "parked": 0,
        "phase_groups": 0,
    }


def test_fastiovd_falls_back_to_timeout_on_interval_mismatch():
    """A scanner wired to a ticker with a foreign interval must keep its
    private timer (the ticker only serves daemons matching its phase
    math) — and still produce identical results."""
    from repro.core import build_host
    from repro.spec import PAPER_TESTBED

    host_plain = build_host("fastiov", spec=PAPER_TESTBED, seed=3)
    result_plain = host_plain.launch(20)

    ticker = DaemonTicker.__new__(DaemonTicker)  # interval set below
    host_tick = build_host("fastiov", spec=PAPER_TESTBED, seed=3)
    ticker.__init__(host_tick.sim, PAPER_TESTBED.fastiovd_scan_interval_s * 2)
    host_tick.fastiovd._ticker = ticker
    result_tick = host_tick.launch(20)

    plain = result_plain.startup_times("fastiov").summary()
    tick = result_tick.startup_times("fastiov").summary()
    assert tick == plain
    assert ticker.ticks_fired == 0  # never parked on the mismatched ticker
