"""Tests for the wall-clock telemetry plane (repro.obs.runtime/live).

Covers the probe/aggregator units, the ``T`` wire envelope, the
dual-clock exporter's shape contract (satellite: required keys,
monotonic timestamps per track, pid/tid uniqueness, both clocks, across
shard counts and sync modes), the ``repro top`` renderer, the
perf-report ``--compare`` gate, and the invariance contract: probes on
vs off must produce identical summaries, and ``LAST_TRACE`` must
survive every sync mode (the hierarchical regression).
"""

import json
import multiprocessing
import os
import pathlib
import sys

import pytest

from repro.cluster import wire
from repro.cluster.churn import run_cluster_cell
from repro.experiments import parallel
from repro.experiments.parallel import Cell, run_cell
from repro.obs.export import to_dual_clock_trace, write_dual_clock_trace
from repro.obs.live import LiveView, _fmt_bytes, _fmt_eta, render
from repro.obs.runtime import (
    MAX_PENDING_INSTANTS,
    MAX_PENDING_SPANS,
    PHASES,
    RecordBuffer,
    RuntimeProbe,
    TelemetryAggregator,
    WireStats,
    probes_enabled,
)

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
from benchmarks import perf_report  # noqa: E402


# ----------------------------------------------------------------------
# probe unit behavior
# ----------------------------------------------------------------------
def test_probes_enabled_env(monkeypatch):
    monkeypatch.delenv("REPRO_RUNTIME_PROBES", raising=False)
    assert not probes_enabled()
    monkeypatch.setenv("REPRO_RUNTIME_PROBES", "0")
    assert not probes_enabled()
    monkeypatch.setenv("REPRO_RUNTIME_PROBES", "1")
    assert probes_enabled()


def test_probe_lap_accumulates_and_chains():
    probe = RuntimeProbe("worker-0")
    t0 = probe.begin()
    t1 = probe.lap("compute", t0)
    t2 = probe.lap("barrier_wait", t1)
    assert t2 >= t1 >= t0
    assert probe.phase_n == {"compute": 1, "barrier_wait": 1}
    assert all(value >= 0.0 for value in probe.phase_s.values())
    assert set(probe.phase_s) <= set(PHASES)


def test_probe_flush_is_incremental():
    probe = RuntimeProbe("worker-1", hosts=[[0, 4]])
    probe.lap("compute", probe.begin())
    probe.instant("rollback")
    probe.count("rollbacks")
    probe.gauge("frontier_epoch", 7)
    first = probe.flush()
    assert first["ident"] == "worker-1"
    assert first["hosts"] == [[0, 4]]
    assert len(first["spans"]) == 1
    assert [name for _rel, name in first["instants"]] == ["rollback"]
    assert first["counters"] == {"rollbacks": 1}
    assert first["gauges"] == {"frontier_epoch": 7}
    # spans/instants drain; cumulative scalars persist
    second = probe.flush()
    assert second["spans"] == [] and second["instants"] == []
    assert second["counters"] == {"rollbacks": 1}
    assert second["phases"]["compute"][1] == 1


def test_probe_span_buffer_bounded():
    probe = RuntimeProbe("worker-2")
    began = probe.begin()
    for _ in range(MAX_PENDING_SPANS + 10):
        probe.lap("compute", began, now=began)
    record = probe.flush()
    assert len(record["spans"]) == MAX_PENDING_SPANS
    assert record["dropped_spans"] == 10
    # totals stay exact even when spans drop
    assert record["phases"]["compute"][1] == MAX_PENDING_SPANS + 10
    for _ in range(MAX_PENDING_INSTANTS + 5):
        probe.instant("rollback")
    assert len(probe.flush()["instants"]) == MAX_PENDING_INSTANTS


def test_probe_pack_adopt_carries_totals_drops_pending():
    probe = RuntimeProbe("worker-0")
    probe.lap("speculate", probe.begin())
    probe.count("epochs", 5)
    probe.wire.note_tx("S", 100)
    packed = probe.pack()
    # a fresh probe (the checkpoint child) adopts the totals
    child = RuntimeProbe("worker-0")
    child.adopt(packed)
    assert child.counters == {"epochs": 5}
    assert child.phase_n == {"speculate": 1}
    assert child.wire.tx == {"S": [1, 100]}
    # the parent's unflushed span died with it, counted as dropped
    record = child.flush()
    assert record["spans"] == []
    assert record["dropped_spans"] == 1


def test_wire_stats_accounting():
    stats = WireStats()
    stats.note_tx("S", 10)
    stats.note_tx("S", 30)
    stats.note_rx("L", 7)
    snap = stats.snapshot()
    assert snap["tx"] == {"S": [2, 40]}
    assert snap["rx"] == {"L": [1, 7]}


def test_record_buffer_drains():
    buffer = RecordBuffer()
    buffer([{"ident": "a"}])
    buffer([{"ident": "b"}, {"ident": "c"}])
    assert [r["ident"] for r in buffer.drain()] == ["a", "b", "c"]
    assert buffer.drain() == []


# ----------------------------------------------------------------------
# aggregator
# ----------------------------------------------------------------------
def _record(ident, wall0=100.0, epochs=0, rollbacks=0, **extra):
    record = {
        "ident": ident, "pid": 1234, "wall0": wall0, "up_s": 1.0,
        "phases": {}, "counters": {"epochs": epochs,
                                   "rollbacks": rollbacks},
        "gauges": {}, "wire": {"tx": {}, "rx": {}},
        "spans": [], "instants": [], "dropped_spans": 0,
    }
    record.update(extra)
    return record


def test_aggregator_ident_order_and_origin():
    agg = TelemetryAggregator()
    agg.ingest([_record("worker-1", wall0=102.0),
                _record("relay-0", wall0=101.0),
                _record("coordinator", wall0=100.0),
                _record("worker-0", wall0=103.0)])
    assert agg.idents() == ["coordinator", "relay-0",
                            "worker-0", "worker-1"]
    assert agg.wall_origin() == 100.0


def test_aggregator_keeps_latest_and_accumulates_spans():
    agg = TelemetryAggregator()
    agg.ingest([_record("worker-0", epochs=1,
                        spans=[("compute", 0.0, 0.5)])])
    agg.ingest([_record("worker-0", epochs=2,
                        spans=[("compute", 0.5, 0.9)],
                        instants=[(0.7, "rollback")])])
    snap = agg.snapshot()
    record = snap["processes"]["worker-0"]
    assert record["counters"]["epochs"] == 2
    assert len(record["spans"]) == 2
    assert record["instants"] == [[0.7, "rollback"]]
    assert json.loads(json.dumps(snap))  # plain JSON-able


def test_aggregator_snapshot_polls_local_probes():
    agg = TelemetryAggregator()
    probe = RuntimeProbe("main", hosts=[[0, 8]])
    agg.attach_local(probe)
    probe.lap("compute", probe.begin())
    snap = agg.snapshot()
    assert "main" in snap["processes"]
    assert snap["processes"]["main"]["hosts"] == [[0, 8]]


def test_aggregator_progress_and_rates():
    agg = TelemetryAggregator()
    agg.note_progress(10, 100, 3)
    agg.ingest([_record("worker-0")])
    assert agg.snapshot()["progress"] == [10, 100, 3]
    # fewer than two samples -> zero rates, no crash
    assert agg.rates("worker-0") == (0.0, 0.0, 0.0)
    assert agg.rates("missing") == (0.0, 0.0, 0.0)


# ----------------------------------------------------------------------
# the T wire envelope
# ----------------------------------------------------------------------
def test_telemetry_envelope_roundtrip():
    parent, child = multiprocessing.Pipe()
    probe = RuntimeProbe("worker-0")
    probe.lap("compute", probe.begin())
    sink_batches = []
    wire.set_probe(probe)
    try:
        wire.send(parent, ("loads", [(3, 2)]), piggyback=True)
    finally:
        wire.set_probe(None)
    wire.set_telemetry_sink(sink_batches.append)
    try:
        message = wire.recv(child)
    finally:
        wire.set_telemetry_sink(None)
    parent.close(), child.close()
    # the protocol message survives the envelope untouched
    assert message == ("loads", [(3, 2)])
    # ... and the probe record rode along
    assert len(sink_batches) == 1
    records = sink_batches[0]
    assert records[-1]["ident"] == "worker-0"
    assert "compute" in records[-1]["phases"]


def test_telemetry_envelope_without_sink_still_decodes():
    parent, child = multiprocessing.Pipe()
    wire.set_probe(RuntimeProbe("worker-0"))
    try:
        wire.send(parent, ("ok", None), piggyback=True)
    finally:
        wire.set_probe(None)
    assert wire.recv(child) == ("ok", None)
    parent.close(), child.close()


def test_plain_send_has_no_envelope():
    parent, child = multiprocessing.Pipe()
    wire.send(parent, ("run_until", 2.5))
    raw = child.recv_bytes()
    assert raw[:1] == b"R"
    assert wire.decode(raw) == ("run_until", 2.5)
    parent.close(), child.close()


def test_send_accounts_frames_by_inner_tag():
    parent, child = multiprocessing.Pipe()
    probe = RuntimeProbe("worker-0")
    wire.set_probe(probe)
    try:
        wire.send(parent, ("ok", None), piggyback=True)
        wire.recv(child)
    finally:
        wire.set_probe(None)
    parent.close(), child.close()
    # accounted under the *inner* frame's tag ("K"), never "T"
    assert set(probe.wire.tx) == {"K"}
    assert set(probe.wire.rx) == {"K"}
    assert probe.phase_n.get("ipc_send", 0) == 1
    assert probe.phase_n.get("ipc_recv", 0) == 1


# ----------------------------------------------------------------------
# dual-clock exporter shape (satellite: both clocks, both modes,
# shards 1 vs 4)
# ----------------------------------------------------------------------
def _dual_clock_case(shards, sync):
    telemetry = {}
    trace = {}
    run_cluster_cell("fastiov", 24, hosts=8, seed=3, shards=shards,
                     rate_per_s=6.0, sync=sync, telemetry=telemetry,
                     trace=trace)
    return to_dual_clock_trace(telemetry, bundle=trace)


def _assert_trace_shape(doc, expect_processes):
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    assert events, "empty trace"
    # pid uniqueness: every process_name meta names a distinct pid
    pids = {}
    for event in events:
        if event["ph"] == "M" and event["name"] == "process_name":
            assert event["pid"] not in pids
            pids[event["pid"]] = event["args"]["name"]
    assert len(pids) >= expect_processes
    # pid 0 is the coordinator — or the sole process of an unsharded run
    assert pids[0] in ("coordinator", "main")
    # tid uniqueness per pid: thread_name metas never collide
    threads = {}
    for event in events:
        if event["ph"] == "M" and event["name"] == "thread_name":
            key = (event["pid"], event["tid"])
            assert key not in threads
            threads[key] = event["args"]["name"]
    # both clocks present
    names = set(threads.values())
    assert "[wall] phases" in names
    assert any(name.startswith("[virt] ") for name in names)
    # every event lands on a declared thread, with required keys
    for event in events:
        if event["ph"] == "M":
            continue
        assert (event["pid"], event["tid"]) in threads
        assert {"ph", "ts", "pid", "tid"} <= set(event)
        assert event["ts"] >= 0.0
    # per-track timestamps are monotonic for wall threads (sorted on
    # export) and for virtual B/E/I streams (recorder order)
    by_thread = {}
    for event in events:
        if event["ph"] in ("X", "i", "B", "E", "I"):
            by_thread.setdefault((event["pid"], event["tid"]),
                                 []).append(event["ts"])
    for key, stamps in by_thread.items():
        if threads[key] == "[wall] phases":
            assert stamps == sorted(stamps), f"non-monotonic {key}"
    return pids, threads


@pytest.mark.parametrize("shards,sync,expect", [
    (1, "conservative", 1),
    (4, "conservative", 5),
    (4, "optimistic", 5),
])
def test_dual_clock_trace_shape(shards, sync, expect):
    doc = _dual_clock_case(shards, sync)
    pids, threads = _assert_trace_shape(doc, expect)
    if shards > 1:
        workers = [n for n in pids.values() if n.startswith("worker")]
        assert len(workers) == shards
        # virtual tracks distribute across worker process groups via
        # their host ranges, not all on the coordinator
        virt_pids = {pid for (pid, _tid), name in threads.items()
                     if name.startswith("[virt] host")}
        assert len(virt_pids) > 1


def test_dual_clock_trace_without_bundle():
    telemetry = {}
    run_cluster_cell("fastiov", 24, hosts=8, seed=3, shards=4,
                     rate_per_s=6.0, sync="optimistic",
                     telemetry=telemetry)
    doc = to_dual_clock_trace(telemetry)
    names = {e["args"]["name"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert names == {"[wall] phases"}


def test_write_dual_clock_trace_deterministic_json(tmp_path):
    telemetry = {
        "origin": 100.0,
        "progress": None,
        "processes": {"coordinator": _record("coordinator",
                                             spans=[["compute", 0.0,
                                                     0.25]])},
    }
    path = tmp_path / "wall.json"
    write_dual_clock_trace(telemetry, path)
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert spans and spans[0]["dur"] == pytest.approx(0.25e6)


# ----------------------------------------------------------------------
# invariance: probes must never change results
# ----------------------------------------------------------------------
@pytest.mark.parametrize("sync,shards", [("optimistic", 4),
                                         ("hierarchical", 8)])
def test_probe_invariance(monkeypatch, sync, shards):
    kwargs = dict(hosts=16, seed=5, shards=shards, rate_per_s=6.0,
                  sync=sync)
    monkeypatch.delenv("REPRO_RUNTIME_PROBES", raising=False)
    plain = run_cluster_cell("fastiov", 48, **kwargs)
    monkeypatch.setenv("REPRO_RUNTIME_PROBES", "1")
    probed = run_cluster_cell("fastiov", 48, **kwargs)
    assert plain == probed


def test_telemetry_param_does_not_change_summary():
    kwargs = dict(hosts=4, seed=2, shards=2, rate_per_s=6.0,
                  sync="conservative")
    plain = run_cluster_cell("fastiov", 24, **kwargs)
    telemetry = {}
    probed = run_cluster_cell("fastiov", 24, telemetry=telemetry,
                              **kwargs)
    assert plain == probed
    assert set(telemetry["processes"]) == {"coordinator", "worker-0",
                                           "worker-1"}


def test_single_process_telemetry():
    telemetry = {}
    summary = run_cluster_cell("fastiov", 16, hosts=4, seed=2,
                               telemetry=telemetry)
    assert summary["count"] == 16
    assert telemetry["mode"] == "single"
    assert telemetry["shards"] == 1
    record = telemetry["processes"]["main"]
    assert record["phases"]["compute"][1] >= 1


# ----------------------------------------------------------------------
# LAST_TRACE across sync modes (the hierarchical regression)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("sync", ["conservative", "optimistic",
                                  "hierarchical"])
def test_last_trace_survives_every_sync_mode(sync):
    shards = 8 if sync == "hierarchical" else 2
    cell = Cell("fastiov", 24, kind="cluster", hosts=16, seed=5,
                shards=shards, rate_per_s=6.0, sync=sync, trace=True)
    run_cell(cell)
    assert parallel.LAST_TRACE is not None
    assert parallel.LAST_TRACE["tracks"], f"empty trace under {sync}"


def test_last_telemetry_side_channel(monkeypatch):
    cell = Cell("fastiov", 24, kind="cluster", hosts=8, seed=3,
                shards=2, rate_per_s=6.0, sync="optimistic")
    monkeypatch.delenv("REPRO_RUNTIME_PROBES", raising=False)
    run_cell(cell)
    assert parallel.LAST_TELEMETRY is None
    monkeypatch.setenv("REPRO_RUNTIME_PROBES", "1")
    run_cell(cell)
    assert parallel.LAST_TELEMETRY is not None
    assert "worker-0" in parallel.LAST_TELEMETRY["processes"]


# ----------------------------------------------------------------------
# repro top renderer
# ----------------------------------------------------------------------
def test_fmt_helpers():
    assert _fmt_bytes(512) == "512B"
    assert _fmt_bytes(2048) == "2.0KB"
    assert _fmt_bytes(3 * 1024 * 1024) == "3.0MB"
    assert _fmt_eta(None) == "--:--"
    assert _fmt_eta(75) == "1:15"
    assert _fmt_eta(7300) == "2h01m"


def test_render_layout():
    agg = TelemetryAggregator()
    agg.note_progress(50, 100, 4)
    agg.ingest([
        _record("coordinator", wall0=100.0),
        _record("worker-0", wall0=100.5, epochs=12, rollbacks=3,
                wire={"tx": {"A": [12, 1200]}, "rx": {"S": [12, 5000]}},
                phases={"compute": [0.6, 12], "barrier_wait": [0.2, 12]}),
    ])
    text = render(agg, now=101.0, eta_s=30.0)
    assert "50/100" in text
    assert "coordinator" in text and "worker-0" in text
    for column in ("comp", "barr", "spec"):
        assert column in text
    assert "wire" in text


def test_render_empty_aggregator():
    assert "waiting" in render(TelemetryAggregator()).lower()


def test_live_view_thread_lifecycle():
    agg = TelemetryAggregator()
    agg.ingest([_record("worker-0")])
    import io

    stream = io.StringIO()
    from repro.obs import runtime as runtime_mod

    runtime_mod.set_aggregator(agg)
    try:
        with LiveView(interval_s=0.01, stream=stream):
            import time as time_mod

            time_mod.sleep(0.05)
    finally:
        runtime_mod.set_aggregator(None)
    assert "worker-0" in stream.getvalue()


# ----------------------------------------------------------------------
# perf_report --compare
# ----------------------------------------------------------------------
def test_metric_direction():
    assert perf_report._metric_direction("scale_shards4_s") == "lower"
    assert perf_report._metric_direction(
        "engine_events_per_sec") == "higher"
    assert perf_report._metric_direction("cache_speedup_x") == "higher"
    assert perf_report._metric_direction("python_version") == "info"


def test_compare_flags_gated_regressions(tmp_path, capsys):
    gated = perf_report.GATED_COMPARE_KEYS[0]
    a = {gated: 1.0, "engine_events_per_sec": 1e6,
         "probe_overhead_frac": 0.01}
    b = {gated: 2.0, "engine_events_per_sec": 2e6,
         "probe_overhead_frac": 0.02}
    path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
    path_a.write_text(json.dumps(a))
    path_b.write_text(json.dumps(b))
    failures = perf_report.compare(path_a, path_b, 0.20)
    assert [key for key, *_ in failures] == [gated]
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "improved" in out
    # identical files -> clean
    assert perf_report.compare(path_a, path_a, 0.20) == []


def test_compare_cli_exit_codes(tmp_path, capsys):
    gated = perf_report.GATED_COMPARE_KEYS[0]
    path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
    path_a.write_text(json.dumps({gated: 1.0}))
    path_b.write_text(json.dumps({gated: 2.0}))
    assert perf_report.main(["--compare", str(path_a),
                             str(path_b)]) == 1
    assert perf_report.main(["--compare", str(path_a),
                             str(path_a)]) == 0
    capsys.readouterr()
