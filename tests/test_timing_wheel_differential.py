"""Differential property test: timing wheel vs the reference heap.

Drives randomized workloads — mixed timeouts, cancellable timers,
zero-delay resumes, equal timestamps, direct ``schedule`` calls, and
``run_until`` epoch boundaries — through the production timing-wheel
engine and through the retained heap oracle
(:mod:`tests.reference_scheduler`), asserting the two produce the
*identical* event order, dispatch count, clock, and pending-event
accounting.

Both engines share the dispatch loop (the oracle subclasses
``Simulator`` and swaps only the future-event set), so any divergence
is a wheel-ordering bug by construction.
"""

import random

import pytest

from repro.sim import Simulator, Timeout
from tests.reference_scheduler import ReferenceHeapSimulator

#: Quarter of the default bucket width: quantized delays force frequent
#: equal timestamps and many events per wheel bucket.
QUANTUM = 0.00025

N_CASES = 500


def build_plan(seed):
    """Generate one randomized workload as pure data (engine-agnostic)."""
    rng = random.Random(seed)
    n_procs = rng.randint(2, 7)
    procs = []
    for _ in range(n_procs):
        ops = []
        for _ in range(rng.randint(3, 9)):
            roll = rng.random()
            if roll < 0.40:
                # Sleep: zero-delay, in-bucket, cross-bucket, or spill.
                band = rng.random()
                if band < 0.25:
                    delay = 0.0
                elif band < 0.55:
                    delay = QUANTUM * rng.randint(1, 8)
                elif band < 0.85:
                    delay = QUANTUM * rng.randint(1, 4000)
                else:
                    delay = QUANTUM * rng.randint(4000, 40000)
                ops.append(("sleep", delay))
            elif roll < 0.60:
                # Plain (non-cancellable) schedule at a future/now time.
                ops.append(("sched", QUANTUM * rng.randint(0, 2000)))
            else:
                # Cancellable timer: fires, cancelled immediately, or
                # cancelled at the process's next wakeup.
                delay = QUANTUM * rng.randint(1, 30000)
                action = rng.choice(("keep", "cancel_imm", "cancel_later"))
                ops.append(("timer", delay, action))
        procs.append(ops)
    span = QUANTUM * 50000
    horizons = sorted(
        rng.uniform(0.0, span) for _ in range(rng.randint(0, 4))
    )
    # Quantize some horizons so epochs land exactly on event times.
    horizons = [
        (QUANTUM * round(h / QUANTUM)) if rng.random() < 0.5 else h
        for h in horizons
    ]
    horizons = sorted(set(horizons))
    # Work submitted *between* epochs (the sharded protocol's shape):
    # these inserts can land behind a wheel cursor that already raced
    # ahead to a far-future timer during the previous run_until.
    late = [
        [("sleep", QUANTUM * rng.randint(0, 3000)) for _ in range(2)]
        if rng.random() < 0.6
        else None
        for _ in horizons
    ]
    return {"procs": procs, "horizons": horizons, "late": late, "span": span}


def run_plan(sim_factory, plan):
    """Execute a plan; returns (event log, dispatched, now, pending)."""
    sim = sim_factory()
    log = []

    def fire(tag):
        log.append((tag, sim.now))

    def proc(pid, ops):
        cancel_next = []
        for i, op in enumerate(ops):
            kind = op[0]
            if kind == "sleep":
                yield Timeout(op[1])
                log.append((f"p{pid}.s{i}", sim.now))
                while cancel_next:
                    cancel_next.pop().cancel()
            elif kind == "sched":
                sim.schedule(sim.now + op[1], fire, f"p{pid}.d{i}")
            else:
                timer = sim.call_later(op[1], fire, f"p{pid}.t{i}")
                if op[2] == "cancel_imm":
                    timer.cancel()
                elif op[2] == "cancel_later":
                    cancel_next.append(timer)

    def keeper():
        # Outlives every timer so "keep" timers actually fire.
        yield Timeout(plan["span"] * 2)
        log.append(("keeper", sim.now))

    def late_proc(epoch_index, ops):
        for i, op in enumerate(ops):
            yield Timeout(op[1])
            log.append((f"late{epoch_index}.s{i}", sim.now))

    for pid, ops in enumerate(plan["procs"]):
        sim.spawn(proc(pid, ops), name=f"p{pid}")
    sim.spawn(keeper(), name="keeper")
    for epoch_index, horizon in enumerate(plan["horizons"]):
        sim.run_until(horizon)
        log.append(("epoch", sim.now, sim.pending_events))
        late_ops = plan["late"][epoch_index]
        if late_ops:
            sim.spawn(late_proc(epoch_index, late_ops))
    sim.run()
    return log, sim.events_dispatched, sim.now, sim.pending_events


def test_wheel_matches_reference_heap_on_randomized_workloads():
    mismatches = []
    for seed in range(N_CASES):
        plan = build_plan(seed)
        wheel = run_plan(Simulator, plan)
        heap = run_plan(ReferenceHeapSimulator, plan)
        if wheel != heap:
            mismatches.append(seed)
    assert not mismatches, (
        f"wheel diverged from reference heap on seeds {mismatches[:10]} "
        f"({len(mismatches)}/{N_CASES} cases)"
    )


@pytest.mark.parametrize("width", [1e-5, 1e-3, 0.25, 7.0])
def test_wheel_order_is_bucket_width_invariant(width):
    # Event order must be a function of the workload only — bucket
    # width (spec-derived) may change performance, never results.
    for seed in (1, 17, 123):
        plan = build_plan(seed)
        base = run_plan(Simulator, plan)
        other = run_plan(lambda: Simulator(bucket_width=width), plan)
        assert other == base


def test_equal_time_cohort_spanning_wheel_and_spill_levels():
    # Events at one timestamp inserted at different clock times can land
    # on different levels (bucket now, spill earlier); the drain must
    # still produce pure seq order.
    def run(sim_factory):
        sim = sim_factory()
        log = []
        target = 0.001 * 300  # beyond the 256-slot window at t=0

        def fire(tag):
            log.append((tag, sim.now))

        def driver():
            sim.schedule(target, fire, "early-seq")  # spill at t=0
            yield Timeout(target / 2)
            sim.schedule(target, fire, "mid-seq")  # wheel by now
            yield Timeout(target / 2 - 0.0001)
            sim.schedule(target, fire, "late-seq")
            yield Timeout(target)  # outlive the cohort so it fires

        sim.spawn(driver())
        sim.run()
        return log

    wheel = run(Simulator)
    heap = run(ReferenceHeapSimulator)
    assert wheel == heap
    assert [tag for tag, _ in wheel] == ["early-seq", "mid-seq", "late-seq"]


def build_cancel_heavy_plan(seed):
    """A plan where most operations arm timers and most timers die.

    Exercises the SoA pool's tombstone/compaction machinery: the lazy
    tables fill with dead handles that the wheel reaps in bulk while
    the heap oracle reaps them one pop at a time.
    """
    rng = random.Random(seed ^ 0x5CA1E)
    procs = []
    for _ in range(rng.randint(3, 6)):
        ops = []
        for _ in range(rng.randint(6, 14)):
            roll = rng.random()
            if roll < 0.70:
                delay = QUANTUM * rng.randint(1, 20000)
                action = rng.choice(
                    ("cancel_imm", "cancel_imm", "cancel_later", "keep")
                )
                ops.append(("timer", delay, action))
            elif roll < 0.85:
                ops.append(("sleep", QUANTUM * rng.randint(0, 400)))
            else:
                ops.append(("sched", QUANTUM * rng.randint(0, 400)))
        procs.append(ops)
    return {"procs": procs, "horizons": [], "late": [], "span": QUANTUM * 50000}


def build_zero_delay_plan(seed):
    """A plan dominated by zero-delay resumes and same-timestamp bursts.

    Zero-delay events bypass the wheel (ready ring), but they interleave
    with wheel cohorts at the same timestamp — the tie-order contract's
    sharpest edge.
    """
    rng = random.Random(seed ^ 0x0DE1A)
    procs = []
    for _ in range(rng.randint(3, 6)):
        ops = []
        for _ in range(rng.randint(5, 12)):
            roll = rng.random()
            if roll < 0.55:
                ops.append(("sleep", 0.0))
            elif roll < 0.75:
                # Same-timestamp cohort: quantized tiny delays collide.
                ops.append(("sleep", QUANTUM * rng.randint(1, 3)))
            elif roll < 0.90:
                ops.append(("sched", QUANTUM * rng.randint(0, 3)))
            else:
                ops.append(("timer", QUANTUM * rng.randint(1, 50), "keep"))
        procs.append(ops)
    return {"procs": procs, "horizons": [], "late": [], "span": QUANTUM * 50000}


def build_pool_recycling_plan(seed):
    """Waves of short-lived timers so pool handles recycle constantly.

    Each wave arms a batch of timers that either fire or are cancelled
    before the next wave arms over the freed handles; a mis-recycled
    slot (stale column data, a live handle on the free list) surfaces
    as an order or accounting divergence from the oracle.
    """
    rng = random.Random(seed ^ 0xF4EE)
    procs = []
    for _ in range(rng.randint(2, 4)):
        ops = []
        for _ in range(rng.randint(8, 16)):
            roll = rng.random()
            if roll < 0.45:
                # Fires soon: the slot drains and the handle recycles.
                ops.append(("timer", QUANTUM * rng.randint(1, 8), "keep"))
            elif roll < 0.75:
                ops.append(("timer", QUANTUM * rng.randint(1, 8),
                            rng.choice(("cancel_imm", "cancel_later"))))
            else:
                # Step past the wave so its handles are freed.
                ops.append(("sleep", QUANTUM * rng.randint(4, 16)))
        procs.append(ops)
    return {"procs": procs, "horizons": [], "late": [], "span": QUANTUM * 50000}


@pytest.mark.parametrize("builder", [
    build_cancel_heavy_plan,
    build_zero_delay_plan,
    build_pool_recycling_plan,
])
def test_biased_interleavings_match_reference_heap(builder):
    mismatches = []
    for seed in range(120):
        plan = builder(seed)
        wheel = run_plan(Simulator, plan)
        heap = run_plan(ReferenceHeapSimulator, plan)
        if wheel != heap:
            mismatches.append(seed)
    assert not mismatches, (
        f"{builder.__name__}: diverged on seeds {mismatches[:10]} "
        f"({len(mismatches)}/120 cases)"
    )


@pytest.mark.parametrize("factory", [Simulator, ReferenceHeapSimulator])
def test_stale_timer_on_recycled_pool_slot_is_noop(factory):
    """A Timer whose pool slot was freed and re-armed by an unrelated
    event must be inert on both engines: cancel() returns False, the
    new occupant still fires, and the accounting never moves."""
    sim = factory()
    fired = []

    timer = sim.call_later(0.001, fired.append, "victim")
    handle = timer._handle

    # Fire the victim as the *last* event so its handle is the LIFO
    # free-list head when the replacement allocates.
    sim.run_until(0.002)
    assert fired == ["victim"]
    assert not timer.active

    # Recycle the exact slot with an unrelated timer.
    replacement = sim.call_later(0.5, fired.append, "replacement")
    assert replacement._handle == handle, "pool should recycle LIFO"

    pending_before = sim.pending_events
    cancelled_before = sim._timers_cancelled
    assert timer.cancel() is False
    assert timer.when is None
    assert sim.pending_events == pending_before
    assert sim._timers_cancelled == cancelled_before
    assert replacement.active

    sim.run_until(1.0)
    assert fired == ["victim", "replacement"]


def test_event_exactly_on_run_until_horizon_fires_inside_epoch():
    for factory in (Simulator, ReferenceHeapSimulator):
        sim = factory()
        fired = []
        sim.schedule(0.5, fired.append, "on-horizon")
        sim.schedule(0.5000001, fired.append, "past-horizon")
        sim.run_until(0.5)
        assert fired == ["on-horizon"]
        assert sim.now == 0.5
        sim.run_until(1.0)
        assert fired == ["on-horizon", "past-horizon"]
