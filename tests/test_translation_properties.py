"""Property-based tests for the translation tables (IOMMU, EPT) and
devset open-count accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.ept import EPT, EptFault
from repro.hw.errors import DmaTranslationFault
from repro.hw.iommu import IOMMU
from repro.hw.memory import PhysicalMemory

PAGE = 4096
FRAMES = 64


iommu_ops = st.lists(
    st.one_of(
        st.integers(min_value=0, max_value=31).map(lambda i: ("map", i)),
        st.integers(min_value=0, max_value=31).map(lambda i: ("unmap", i)),
        st.integers(min_value=0, max_value=31).map(lambda i: ("lookup", i)),
    ),
    max_size=80,
)


@given(ops=iommu_ops)
@settings(max_examples=150, deadline=None)
def test_iommu_model_matches_reference_dict(ops):
    """The IOMMU domain behaves exactly like a dict IOVA -> page."""
    mem = PhysicalMemory(FRAMES * PAGE, PAGE)
    region = mem.allocate(32 * PAGE, owner="vm")
    for page in region.pages:
        page.pin()
    domain = IOMMU().create_domain("vm")
    reference = {}
    for op, index in ops:
        iova = index * PAGE
        if op == "map":
            if iova in reference:
                continue  # model would (correctly) reject double-map
            domain.map_page(iova, region.pages[index])
            reference[iova] = region.pages[index]
        elif op == "unmap":
            if iova not in reference:
                continue
            assert domain.unmap_page(iova) is reference.pop(iova)
        else:
            if iova in reference:
                page, offset = domain.translate(iova + 7)
                assert page is reference[iova]
                assert offset == 7
            else:
                try:
                    domain.translate(iova)
                    raise AssertionError("expected a DMA fault")
                except DmaTranslationFault:
                    pass
        assert domain.entry_count == len(reference)
        assert domain.mapped_bytes == len(reference) * PAGE


@given(
    touches=st.lists(st.integers(min_value=0, max_value=31 * PAGE),
                     min_size=1, max_size=60)
)
@settings(max_examples=100, deadline=None)
def test_ept_faults_exactly_once_per_distinct_page(touches):
    """However a GPA sequence interleaves, each page faults once."""
    mem = PhysicalMemory(FRAMES * PAGE, PAGE)
    region = mem.allocate(32 * PAGE, owner="vm")
    ept = EPT("vm", PAGE)
    for gpa in touches:
        try:
            ept.translate(gpa)
        except EptFault as fault:
            ept.insert(fault.gpa, region.pages[fault.gpa // PAGE])
            page, _ = ept.translate(gpa)  # now resolves
    distinct_pages = {gpa // PAGE for gpa in touches}
    assert ept.fault_count == len(distinct_pages)
    assert ept.entry_count == len(distinct_pages)


@given(
    schedule=st.lists(st.booleans(), min_size=1, max_size=40),
    devices=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=60, deadline=None)
def test_devset_open_count_is_conserved(schedule, devices):
    """Any interleaving of opens/closes keeps total_open_count equal to
    the number of live handles, under both lock policies."""
    from tests.conftest import KernelRig

    for policy in ("coarse", "hierarchical"):
        rig = KernelRig(lock_policy=policy, vf_count=devices)
        rig.bind_all_vfs_to_vfio()
        live = []
        expected = {"count": 0}

        def driver(rig=rig, live=live, expected=expected):
            for index, do_open in enumerate(schedule):
                if do_open:
                    handle = yield from rig.vfio.open_device(
                        rig.vfs[index % devices], opener=f"op{index}"
                    )
                    live.append(handle)
                    expected["count"] += 1
                elif live:
                    handle = live.pop()
                    yield from rig.vfio.close_device(handle)
                    expected["count"] -= 1
                devset = rig.vfio.devset_of(rig.vfs[0])
                assert devset.total_open_count == expected["count"]

        rig.sim.spawn(driver())
        rig.run()
