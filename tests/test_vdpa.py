"""Tests for the vDPA extension (§7 future work, implemented)."""

import pytest

from repro.core import SolutionConfig, build_host, get_preset
from repro.hw.memory import MIB
from repro.spec import HostSpec
from repro.workloads import make_app

SMALL_SPEC = HostSpec(
    memory_bytes=8 * 1024 * MIB,
    rom_bytes=8 * MIB,
    image_bytes=32 * MIB,
    nic_ring_bytes=4 * MIB,
    container_image_bytes=8 * MIB,
    jitter_sigma=0.0,
)
VM = 96 * MIB


def small_host(preset, **kwargs):
    return build_host(preset, spec=SMALL_SPEC, vf_count=16, **kwargs)


def test_vdpa_presets_exist_and_validate():
    assert get_preset("fastiov-vdpa").vdpa
    assert get_preset("vanilla-vdpa").vdpa
    with pytest.raises(ValueError):
        SolutionConfig(name="x", network="ipvtap", vdpa=True)


def test_vdpa_container_starts_with_passthrough_but_virtio_control():
    host = small_host("vanilla-vdpa")
    result = host.launch(2, memory_bytes=VM)
    assert all(record.failed is None for record in result.records)
    container = host.engine.containers["c0"]
    # Still a real passthrough VF...
    assert container.microvm.vf is not None
    assert container.microvm.domain is not None
    # ...but no PF-mailbox negotiation happened.
    assert host.binding.mailbox_stats.acquisitions == 0
    assert container.microvm.network_ready.triggered


def test_vdpa_skips_vendor_driver_cost():
    vdpa = small_host("vanilla-vdpa").launch(4, memory_bytes=VM)
    vendor = small_host("vanilla").launch(4, memory_bytes=VM)
    assert (vdpa.mean_step_time("5-vf-driver")
            < vendor.mean_step_time("5-vf-driver") / 3)


def test_vdpa_rings_are_proactively_faulted_for_nic_dma():
    """The §7 property: virtio's buffer protocol EPT-faults the rings,
    so device-first-write is safe even with lazy zeroing and no vendor
    driver changes."""
    host = small_host("fastiov-vdpa")
    host.launch(1, memory_bytes=VM)
    container = host.engine.containers["c0"]
    vm = container.microvm

    def dma_flow():
        yield from vm.guest.wait_network_ready()
        host.nic.dma.write(vm.domain, vm.nic_ring_gpa, 2 * MIB,
                           writer_tag="nic-rx")
        yield from host.kvm.guest_touch_range(
            vm.vm, vm.nic_ring_gpa, 2 * MIB, expect="nic-rx", verify=True
        )

    host.sim.spawn(dma_flow())
    host.sim.run()  # no DmaTranslationFault, no ResidualDataLeak


def test_vdpa_app_end_to_end():
    host = small_host("fastiov-vdpa")
    result = host.launch(
        2, memory_bytes=VM, app_factory=lambda index: make_app("image")
    )
    assert all(record.failed is None for record in result.records)
    for record in result.records:
        assert record.task_completion_time > record.startup_time


def test_plan_rejects_vdpa_without_passthrough():
    from repro.virt.hypervisor import VirtNetworkPlan

    with pytest.raises(ValueError):
        VirtNetworkPlan(passthrough=False, vdpa=True)
