"""Tests for the deferred-mapping (vIOMMU, §8) baseline."""

import pytest

from repro.core import SolutionConfig, build_host, get_preset
from repro.hw.errors import DmaTranslationFault
from repro.hw.memory import MIB
from repro.spec import HostSpec
from repro.workloads import make_app
from repro.workloads.datapath import download_from_storage

SMALL_SPEC = HostSpec(
    memory_bytes=8 * 1024 * MIB,
    rom_bytes=8 * MIB,
    image_bytes=32 * MIB,
    nic_ring_bytes=4 * MIB,
    container_image_bytes=8 * MIB,
    jitter_sigma=0.0,
)
VM = 96 * MIB


def small_host(**kwargs):
    return build_host("viommu", spec=SMALL_SPEC, vf_count=8, **kwargs)


def test_preset_validation():
    assert get_preset("viommu").deferred_mapping
    with pytest.raises(ValueError):
        SolutionConfig(name="x", network="none", deferred_mapping=True)
    with pytest.raises(ValueError):
        SolutionConfig(name="x", deferred_mapping=True,
                       decoupled_zeroing=True)


def test_startup_maps_nothing_but_attaches_the_vf():
    host = small_host()
    result = host.launch(1, memory_bytes=VM)
    assert result.records[0].failed is None
    container = host.engine.containers["c0"]
    vm = container.microvm
    assert vm.vf_handle is not None           # real VFIO attach
    assert vm.mapped_regions == {}            # but no up-front mapping
    assert vm.domain.entry_count == 0
    assert "ram" in vm.anon_mappings          # demand-paged memory
    assert result.records[0].step_time("1-dma-ram") == 0


def test_startup_skips_at_least_the_mapping_and_zeroing_cost():
    n = 8
    big_vm = 512 * MIB
    viommu = small_host().launch(n, memory_bytes=big_vm)
    vanilla = build_host("vanilla", spec=SMALL_SPEC, vf_count=8).launch(
        n, memory_bytes=big_vm
    )
    gap = vanilla.startup_times().mean - viommu.startup_times().mean
    zero_cost = SMALL_SPEC.zeroing_cpu_seconds(big_vm)
    assert gap > zero_cost * 0.5


def test_dma_faults_hard_until_the_emulation_maps():
    """Without the vIOMMU intercept, device DMA to unmapped memory is a
    hard fault — the reason real deferred mapping needs the emulation
    layer in the first place."""
    host = small_host()
    host.launch(1, memory_bytes=VM)
    vm = host.engine.containers["c0"].microvm

    def raw_dma():
        yield from vm.guest.wait_network_ready()
        with pytest.raises(DmaTranslationFault):
            host.nic.dma.write(vm.domain, vm.nic_ring_gpa, MIB,
                               writer_tag="nic-rx")

    host.sim.spawn(raw_dma())
    host.sim.run()


def test_first_download_maps_on_demand_then_reuses():
    host = small_host()
    host.launch(1, memory_bytes=VM)
    container = host.engine.containers["c0"]
    vm = container.microvm
    times = {}

    def flow():
        yield from vm.guest.wait_network_ready()
        t0 = host.sim.now
        yield from download_from_storage(container, host, 2 * MIB)
        times["first"] = host.sim.now - t0
        entries_after_first = vm.domain.entry_count
        t1 = host.sim.now
        yield from download_from_storage(container, host, 2 * MIB)
        times["second"] = host.sim.now - t1
        assert vm.domain.entry_count == entries_after_first  # reused

    host.sim.spawn(flow())
    host.sim.run()
    expected_pages = -(-2 * MIB // SMALL_SPEC.page_size)
    assert vm.domain.entry_count == expected_pages
    assert times["first"] > times["second"]


def test_app_end_to_end_and_clean_teardown():
    host = small_host()
    result = host.launch(
        2, memory_bytes=VM, app_factory=lambda index: make_app("image")
    )
    assert all(record.failed is None for record in result.records)

    def removal():
        yield from host.engine.remove_container("c0")
        yield from host.engine.remove_container("c1")

    host.sim.spawn(removal())
    host.sim.run()
    assert host.iommu.domain_count == 0
    # Only the shared image cache may remain resident.
    assert host.memory.allocated_bytes <= SMALL_SPEC.image_bytes
