"""Tests for the virtualization layer: hypervisor, guest, virtioFS."""

import pytest

from repro.hw.memory import MIB
from repro.metrics.timeline import StartupRecord, StepTimer
from repro.oskernel.errors import GuestCrash
from repro.oskernel.vfio import DECOUPLED_ZEROING, EAGER_ZEROING
from repro.sim.errors import ProcessFailed
from repro.virt.hypervisor import VirtNetworkPlan
from repro.virt.layout import GuestMemoryLayout
from tests.conftest import KernelRig


def make_rig(**kwargs):
    defaults = dict(lock_policy="hierarchical")
    defaults.update(kwargs)
    r = KernelRig(**defaults)
    r.bind_all_vfs_to_vfio()
    return r


def small_spec(r):
    """Shrink guest geometry so tests stay fast."""
    return r.spec.derive(
        rom_bytes=2 * MIB,
        image_bytes=8 * MIB,
        nic_ring_bytes=2 * MIB,
        boot_touch_fraction=0.1,
    )


def create_vm(r, name="vm0", ram=32 * MIB, plan=None, boot=False,
              vf_init=False):
    """Drive hypervisor.create_microvm (+ optional boot/driver init)."""
    r.hypervisor._spec = small_spec(r)
    plan = plan or VirtNetworkPlan()
    record = StartupRecord(name)
    timer = StepTimer(r.sim, record)
    out = {}

    def flow():
        timer.mark_start()
        microvm = yield from r.hypervisor.create_microvm(name, ram, plan, timer)
        if boot:
            yield from microvm.guest.boot(timer)
        if vf_init:
            yield from microvm.guest.vf_driver_init(timer)
        timer.mark_ready()
        out["vm"] = microvm

    r.sim.spawn(flow())
    r.run()
    out["record"] = record
    return out


def passthrough_plan(r, **kwargs):
    return VirtNetworkPlan(passthrough=True, vf=r.vfs[0], **kwargs)


# ----------------------------------------------------------------------
# layout
# ----------------------------------------------------------------------
def test_layout_geometry_and_rom_fraction():
    from repro.spec import HostSpec

    spec = HostSpec()
    layout = GuestMemoryLayout.for_vm(spec, 512 * MIB)
    assert layout.rom_bytes == 48 * MIB
    assert layout.image_gpa == 512 * MIB
    assert layout.rom_fraction() == pytest.approx(0.094, abs=0.001)


def test_layout_validation():
    with pytest.raises(ValueError):
        GuestMemoryLayout(ram_bytes=4 * MIB, rom_bytes=4 * MIB,
                          image_bytes=4 * MIB, page_size=MIB)
    with pytest.raises(ValueError):
        GuestMemoryLayout(ram_bytes=4 * MIB + 1, rom_bytes=MIB,
                          image_bytes=4 * MIB, page_size=MIB)


# ----------------------------------------------------------------------
# microVM creation paths
# ----------------------------------------------------------------------
def test_passthrough_vm_maps_ram_and_image():
    r = make_rig()
    out = create_vm(r, plan=passthrough_plan(r))
    vm = out["vm"]
    assert set(vm.mapped_regions) == {"ram", "image"}
    assert vm.vf_handle is not None
    assert vm.vf.assigned_to == "vm0"
    record = out["record"]
    for step in ("1-dma-ram", "2-virtiofs", "3-dma-image", "4-vfio-dev"):
        assert record.step_time(step) > 0, step


def test_skip_image_mapping_uses_shared_page_cache():
    r = make_rig()
    out0 = create_vm(r, name="vm0",
                     plan=passthrough_plan(r, skip_image_mapping=True))
    assert "image" not in out0["vm"].mapped_regions
    assert out0["record"].step_time("3-dma-image") == 0
    before = r.memory.allocated_bytes
    out1 = create_vm(r, name="vm1",
                     plan=VirtNetworkPlan(passthrough=True, vf=r.vfs[1],
                                          skip_image_mapping=True),
                     boot=True)
    # The second VM's image reads hit the shared cache: extra memory is
    # its RAM + (at most) newly cached image pages, never a full copy.
    growth = r.memory.allocated_bytes - before
    assert growth <= 32 * MIB + r.hypervisor._spec.image_bytes


def test_non_passthrough_vm_has_no_dma_steps():
    r = make_rig()
    out = create_vm(r, plan=VirtNetworkPlan())
    vm = out["vm"]
    record = out["record"]
    assert vm.mapped_regions == {}
    assert vm.vf_handle is None
    assert record.step_time("1-dma-ram") == 0
    assert record.step_time("4-vfio-dev") == 0
    assert record.step_time("2-virtiofs") > 0
    assert "ram" in vm.anon_mappings


def test_passthrough_creation_much_slower_than_anon():
    ram = 256 * MIB
    slow = make_rig()
    t_pass = create_vm(slow, ram=ram,
                       plan=passthrough_plan(slow))["record"].startup_time
    fast = make_rig()
    t_anon = create_vm(fast, ram=ram,
                       plan=VirtNetworkPlan())["record"].startup_time
    # The gap is at least the eager zeroing of RAM + image.
    zero_cost = slow.spec.zeroing_cpu_seconds(ram + slow.hypervisor._spec.image_bytes)
    assert t_pass - t_anon > zero_cost * 0.8


# ----------------------------------------------------------------------
# guest boot
# ----------------------------------------------------------------------
def test_boot_verifies_rom_and_image_content_eager():
    r = make_rig()
    out = create_vm(r, plan=passthrough_plan(r), boot=True)
    assert out["vm"].guest.booted
    assert out["record"].step_time("guest-boot") > 0


def test_boot_with_decoupled_zeroing_and_instant_list_is_safe():
    r = make_rig(with_fastiovd=True, scanner=False)
    out = create_vm(
        r, plan=passthrough_plan(r, zeroing_policy=DECOUPLED_ZEROING), boot=True
    )
    assert out["vm"].guest.booted
    # ROM pages were instant-zeroed, the rest lazily on boot touches.
    assert r.fastiovd.stats.instant_pages > 0
    assert r.fastiovd.stats.fault_zeroed_pages > 0


def test_boot_without_instant_list_crashes_guest():
    """§4.3.2 scenario 1: kernel pages zeroed out from under the guest."""
    r = make_rig(with_fastiovd=True, scanner=False)
    with pytest.raises(ProcessFailed) as excinfo:
        create_vm(
            r,
            plan=passthrough_plan(
                r,
                zeroing_policy=DECOUPLED_ZEROING,
                use_instant_zeroing_list=False,
            ),
            boot=True,
        )
    assert isinstance(excinfo.value.cause, GuestCrash)


def test_boot_non_passthrough_demand_faults_only_working_set():
    r = make_rig()
    out = create_vm(r, ram=32 * MIB, plan=VirtNetworkPlan(), boot=True)
    mapping = out["vm"].anon_mappings["ram"]
    # Resident: ROM + boot working set, far below full RAM.
    assert mapping.resident_bytes < 32 * MIB // 2


# ----------------------------------------------------------------------
# VF driver init
# ----------------------------------------------------------------------
def test_vf_driver_init_triggers_network_ready_and_records_step():
    r = make_rig()
    out = create_vm(r, plan=passthrough_plan(r), boot=True, vf_init=True)
    vm = out["vm"]
    assert vm.network_ready.triggered
    assert vm.guest.vf_driver_ready
    assert out["record"].step_time("5-vf-driver") > 0


def test_vf_driver_rings_are_ept_faulted_before_nic_dma():
    """§7's property: the driver scrubs its rings, so NIC DMA writes
    land on pages the guest can already see."""
    r = make_rig()
    out = create_vm(r, plan=passthrough_plan(r), boot=True, vf_init=True)
    vm = out["vm"]

    def dma_flow():
        # NIC writes a packet into the RX ring via the IOMMU.
        r.nic.dma.write(vm.domain, vm.nic_ring_gpa, 2 * MIB, writer_tag="nic-rx")
        # Guest consumes it.
        yield from r.kvm.guest_touch_range(
            vm.vm, vm.nic_ring_gpa, 2 * MIB, expect="nic-rx", verify=True
        )

    r.sim.spawn(dma_flow())
    r.run()


def test_agent_poll_waits_for_readiness():
    r = make_rig()
    out = create_vm(r, plan=passthrough_plan(r), boot=True)
    vm = out["vm"]
    waited = {}

    def async_init():
        yield from vm.guest.vf_driver_init(StepTimer(r.sim, StartupRecord("x")))

    def app_start():
        t0 = r.sim.now
        yield from vm.guest.wait_network_ready()
        waited["dt"] = r.sim.now - t0

    r.sim.spawn(async_init())
    r.sim.spawn(app_start())
    r.run()
    assert vm.network_ready.triggered
    assert waited["dt"] > 0


# ----------------------------------------------------------------------
# virtioFS transfers
# ----------------------------------------------------------------------
def test_virtiofs_read_delivers_file_data():
    r = make_rig()
    out = create_vm(r, plan=passthrough_plan(r), boot=True)
    vm = out["vm"]

    def flow():
        yield from vm.virtiofs.guest_read_file("app.tar", 4 * MIB)

    r.sim.spawn(flow())
    r.run()
    assert vm.virtiofs.requests == 1
    assert vm.virtiofs.bytes_transferred == 4 * MIB


def test_virtiofs_proactive_faults_protect_lazy_buffers():
    r = make_rig(with_fastiovd=True, scanner=False)
    out = create_vm(
        r, plan=passthrough_plan(r, zeroing_policy=DECOUPLED_ZEROING), boot=True
    )
    vm = out["vm"]

    def flow():
        yield from vm.virtiofs.guest_read_file("app.tar", 4 * MIB)

    r.sim.spawn(flow())
    r.run()  # no crash: faults happened before the backend wrote


def test_virtiofs_without_proactive_faults_corrupts_lazy_buffers():
    """§4.3.2 scenario 2: deferred zeroing destroys delivered data."""
    r = make_rig(with_fastiovd=True, scanner=False)
    out = create_vm(
        r,
        plan=passthrough_plan(
            r,
            zeroing_policy=DECOUPLED_ZEROING,
            proactive_virtio_faults=False,
        ),
        boot=True,
    )
    vm = out["vm"]

    def flow():
        yield from vm.virtiofs.guest_read_file("app.tar", 4 * MIB)

    r.sim.spawn(flow())
    with pytest.raises(ProcessFailed) as excinfo:
        r.run()
    assert isinstance(excinfo.value.cause, GuestCrash)


def test_virtiofs_rejects_bad_length():
    r = make_rig()
    out = create_vm(r, plan=VirtNetworkPlan(), boot=True)
    with pytest.raises(ValueError):
        list(out["vm"].virtiofs.guest_read_file("x", 0))


# ----------------------------------------------------------------------
# teardown
# ----------------------------------------------------------------------
def test_destroy_microvm_releases_resources():
    r = make_rig(with_fastiovd=True, scanner=False)
    out = create_vm(
        r, plan=passthrough_plan(r, zeroing_policy=DECOUPLED_ZEROING), boot=True
    )
    vm = out["vm"]
    before = r.memory.allocated_bytes

    def teardown():
        yield from r.hypervisor.destroy_microvm(vm)

    r.sim.spawn(teardown())
    r.run()
    assert vm.destroyed
    assert vm.vf.assigned_to is None
    assert r.memory.allocated_bytes < before
    assert r.fastiovd.pending_pages(vm.pid) == 0
    assert r.iommu.domain_count == 0


def test_destroy_twice_rejected():
    r = make_rig()
    out = create_vm(r, plan=VirtNetworkPlan())
    vm = out["vm"]

    def teardown():
        yield from r.hypervisor.destroy_microvm(vm)
        yield from r.hypervisor.destroy_microvm(vm)

    r.sim.spawn(teardown())
    with pytest.raises(ProcessFailed):
        r.run()


def test_guest_allocator_exhaustion():
    r = make_rig()
    out = create_vm(r, ram=8 * MIB, plan=VirtNetworkPlan())
    vm = out["vm"]
    with pytest.raises(MemoryError):
        vm.alloc_guest_range(64 * MIB, "too-big")
