"""Additional virtioFS and guest-memory interaction tests."""

import pytest

from repro.hw.memory import MIB
from repro.metrics.timeline import StartupRecord, StepTimer
from repro.oskernel.vfio import DECOUPLED_ZEROING
from repro.virt.hypervisor import VirtNetworkPlan
from tests.conftest import KernelRig
from tests.test_virt import create_vm, make_rig, passthrough_plan


def test_multiple_file_reads_reuse_the_vring_page():
    r = make_rig()
    out = create_vm(r, plan=passthrough_plan(r), boot=True)
    vm = out["vm"]
    faults_after_boot = vm.vm.ept.fault_count

    def flow():
        yield from vm.virtiofs.guest_read_file("a", 2 * MIB)
        yield from vm.virtiofs.guest_read_file("b", 2 * MIB)

    r.sim.spawn(flow())
    r.run()
    assert vm.virtiofs.requests == 2
    # The vring page faulted once; each 2 MiB buffer faulted its pages
    # once (2 pages each at 1 MiB granularity).
    assert vm.vm.ept.fault_count - faults_after_boot == 1 + 2 + 2


def test_unverified_reads_still_touch_data():
    r = make_rig()
    out = create_vm(r, plan=VirtNetworkPlan(), boot=True)
    vm = out["vm"]

    def flow():
        dest = yield from vm.virtiofs.guest_read_file("x", MIB, verify=False)
        return dest

    r.sim.spawn(flow())
    r.run()
    assert vm.virtiofs.bytes_transferred == MIB


def test_explicit_destination_buffer():
    r = make_rig()
    out = create_vm(r, plan=VirtNetworkPlan(), boot=True)
    vm = out["vm"]
    dest = vm.alloc_guest_range(2 * MIB, "my-buffer")
    got = {}

    def flow():
        got["dest"] = yield from vm.virtiofs.guest_read_file(
            "y", 2 * MIB, dest_gpa=dest
        )

    r.sim.spawn(flow())
    r.run()
    assert got["dest"] == dest


def test_transfer_time_scales_with_size():
    r = make_rig()
    out = create_vm(r, plan=VirtNetworkPlan(), boot=True)
    vm = out["vm"]
    times = {}

    def flow():
        t0 = r.sim.now
        yield from vm.virtiofs.guest_read_file("small", MIB)
        times["small"] = r.sim.now - t0
        t1 = r.sim.now
        yield from vm.virtiofs.guest_read_file("large", 8 * MIB)
        times["large"] = r.sim.now - t1

    r.sim.spawn(flow())
    r.run()
    assert times["large"] > times["small"] * 4


def test_lazy_buffer_pages_counted_once_even_with_two_reads():
    """Two sequential reads into fresh buffers: each buffer's pages are
    claimed/zeroed exactly once (no double-zero, no misses)."""
    r = make_rig(with_fastiovd=True, scanner=False)
    out = create_vm(
        r, plan=passthrough_plan(r, zeroing_policy=DECOUPLED_ZEROING),
        boot=True,
    )
    vm = out["vm"]
    zeroed_before = r.fastiovd.stats.fault_zeroed_pages

    def flow():
        yield from vm.virtiofs.guest_read_file("a", 2 * MIB)
        yield from vm.virtiofs.guest_read_file("b", 2 * MIB)

    r.sim.spawn(flow())
    r.run()
    # vring page + 2 buffers x 2 pages, each exactly once.
    assert r.fastiovd.stats.fault_zeroed_pages - zeroed_before == 5


def test_guest_allocator_is_monotonic_and_page_aligned():
    r = make_rig()
    out = create_vm(r, plan=VirtNetworkPlan())
    vm = out["vm"]
    a = vm.alloc_guest_range(100, "tiny")  # rounds up to one page
    b = vm.alloc_guest_range(MIB, "next")
    page = vm.layout.page_size
    assert a % page == 0 and b % page == 0
    assert b == a + page
