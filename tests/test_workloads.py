"""Tests for serverless apps, data paths, arrivals, and membench."""

import pytest

from repro.core import build_host
from repro.hw.memory import GIB, MIB
from repro.sim.rng import Jitter
from repro.spec import HostSpec
from repro.workloads import (
    APP_CATALOG,
    ArrivalPattern,
    Tinymembench,
    make_app,
)
from repro.workloads import reference

SMALL_SPEC = HostSpec(
    memory_bytes=16 * 1024 * MIB,
    rom_bytes=8 * MIB,
    image_bytes=32 * MIB,
    nic_ring_bytes=4 * MIB,
    container_image_bytes=8 * MIB,
    jitter_sigma=0.0,
)
VM = 256 * MIB


def run_app(preset, app_name, count=1, memory_bytes=VM):
    host = build_host(preset, spec=SMALL_SPEC, vf_count=32)
    result = host.launch(
        count, memory_bytes=memory_bytes,
        app_factory=lambda index: make_app(app_name),
    )
    return host, result


# ----------------------------------------------------------------------
# app catalog & reference kernels
# ----------------------------------------------------------------------
def test_catalog_has_the_four_sebs_apps():
    assert sorted(APP_CATALOG) == ["compression", "image", "inference",
                                   "scientific"]
    with pytest.raises(KeyError):
        make_app("database")


def test_catalog_compute_ordering_matches_paper():
    """Fig. 15: execution time grows Image -> Inference."""
    budgets = [APP_CATALOG[n]["compute_cpu_s"]
               for n in ("image", "compression", "scientific", "inference")]
    assert budgets == sorted(budgets)
    assert budgets[0] < budgets[-1] / 10


def test_reference_kernels_actually_compute():
    thumbnail = reference.execute_reference("image")
    assert len(thumbnail) == 100 and len(thumbnail[0]) == 100
    assert all(0 <= px <= 255 for row in thumbnail for px in row)

    compressed = reference.execute_reference("compression")
    assert len(compressed) < 256 * 1024 / 4  # compressible input shrank

    distances = reference.execute_reference("scientific")
    assert len(distances) == 10_000
    assert all(distance >= 0 for distance in distances)  # connected graph

    label = reference.execute_reference("inference")
    assert 0 <= label < 64


def test_speedup_model():
    image = make_app("image")
    inference = make_app("inference")
    assert image.speedup(512 * MIB) == 1.0
    assert image.speedup(2 * GIB) == 1.0  # single-threaded: flat (Fig 16e)
    assert inference.speedup(512 * MIB) == 1.0
    assert inference.speedup(2 * GIB) == pytest.approx(4.0)  # Fig 16h drops


# ----------------------------------------------------------------------
# end-to-end app runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("preset", ["vanilla", "fastiov", "ipvtap"])
def test_app_completes_on_each_network(preset):
    host, result = run_app(preset, "compression")
    record = result.records[0]
    assert record.failed is None
    tct = record.task_completion_time
    assert tct > record.startup_time
    assert record.step_time("app-run") > 0
    assert record.step_time("app-image-transfer") > 0


def test_task_completion_ordering_across_apps():
    times = {}
    for app in ("image", "compression", "scientific", "inference"):
        _host, result = run_app("vanilla", app)
        times[app] = result.records[0].task_completion_time
    assert times["image"] < times["compression"] < times["scientific"] \
        < times["inference"]


def test_fastiov_app_waits_for_network_before_running():
    host, result = run_app("fastiov", "image")
    record = result.records[0]
    container = host.engine.containers["c0"]
    assert container.microvm.network_ready.triggered
    # app ran strictly after readiness (wait step recorded, may be ~0).
    assert record.t_app_done > record.t_ready


def test_app_without_network_fails():
    from repro.sim.errors import ProcessFailed

    host = build_host("no-net", spec=SMALL_SPEC, vf_count=4)
    with pytest.raises(ProcessFailed):
        host.launch(1, memory_bytes=VM,
                    app_factory=lambda index: make_app("image"))


def test_bigger_container_speeds_up_parallel_app():
    _h1, small = run_app("fastiov", "inference", memory_bytes=512 * MIB)
    _h2, big = run_app("fastiov", "inference", memory_bytes=2 * GIB)
    small_tct = small.records[0].task_completion_time
    big_tct = big.records[0].task_completion_time
    assert big_tct < small_tct  # Fig. 16h: more resources, faster task


def test_passthrough_download_faster_than_software_under_load():
    n = 8
    _h1, vf = run_app("fastiov", "inference", count=n)
    _h2, soft = run_app("ipvtap", "inference", count=n)
    vf_run = sum(r.step_time("app-run") for r in vf.records) / n
    soft_run = sum(r.step_time("app-run") for r in soft.records) / n
    assert vf_run < soft_run  # §6.4: software data plane is slower


def test_storage_link_is_shared():
    """Concurrent downloads divide the wire: 8 transfers take ~8x one."""
    from repro.workloads.serverless import ServerlessApp

    def heavy(index):
        return ServerlessApp("bulk", input_bytes=512 * MIB,
                             compute_cpu_s=0.0, footprint_bytes=2 * MIB)

    host1 = build_host("vanilla", spec=SMALL_SPEC, vf_count=32)
    one = host1.launch(1, memory_bytes=VM, app_factory=heavy)
    host8 = build_host("vanilla", spec=SMALL_SPEC, vf_count=32)
    many = host8.launch(8, memory_bytes=VM, app_factory=heavy)
    t1 = one.records[0].step_time("app-run")
    t8 = max(r.step_time("app-run") for r in many.records)
    assert t8 > t1 * 4  # near-8x with overlap slack


# ----------------------------------------------------------------------
# arrivals
# ----------------------------------------------------------------------
def test_arrival_patterns():
    burst = ArrivalPattern("burst")
    assert burst.offsets(3) == [0.0, 0.0, 0.0]
    uniform = ArrivalPattern("uniform", spacing_s=0.5)
    assert uniform.offsets(3) == [0.0, 0.5, 1.0]
    poisson = ArrivalPattern("poisson", rate_per_s=100.0, jitter=Jitter(1))
    offsets = poisson.offsets(50)
    assert offsets == sorted(offsets)
    assert 0 < offsets[-1] < 5.0
    with pytest.raises(ValueError):
        ArrivalPattern("weibull")
    with pytest.raises(ValueError):
        ArrivalPattern("poisson")
    with pytest.raises(ValueError):
        burst.offsets(0)


# ----------------------------------------------------------------------
# membench (§6.5)
# ----------------------------------------------------------------------
def run_membench(preset):
    host = build_host(preset, spec=SMALL_SPEC, vf_count=4)
    host.launch(1, memory_bytes=VM)
    container = host.engine.containers["c0"]
    bench = Tinymembench(host, container, working_set_bytes=32 * MIB)

    def flow():
        # Let any asynchronous VF init finish so its ring touches do
        # not pollute the bench's fault accounting.
        if container.attachment.has_network:
            yield from container.microvm.guest.wait_network_ready()
        yield from bench.run(copy_seconds=1.0, repeats=5,
                             random_reads=1_000_000)

    host.sim.spawn(flow())
    host.sim.run()
    return bench.result


def test_membench_degradation_under_one_percent():
    vanilla = run_membench("vanilla")
    fastiov = run_membench("fastiov")
    throughput_drop = 1 - (
        fastiov.throughput_bytes_per_s / vanilla.throughput_bytes_per_s
    )
    latency_rise = fastiov.latency_s / vanilla.latency_s - 1
    assert throughput_drop < 0.01
    assert latency_rise < 0.01


def test_membench_faults_once_per_page():
    result = run_membench("fastiov")
    assert result.faults == 32 * MIB // SMALL_SPEC.page_size
